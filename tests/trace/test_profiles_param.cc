/**
 * @file
 * Per-benchmark property tests, parameterized over all 16 SPEC CPU2000
 * profiles: every profile must generate deterministically, stay inside
 * its footprint, respect its declared mixes, and run end to end.
 */

#include <gtest/gtest.h>

#include "trace/spec_profiles.hh"
#include "trace/trace_gen.hh"

using namespace bsim;
using namespace bsim::trace;

class EveryProfile : public testing::TestWithParam<std::string>
{
  protected:
    const WorkloadProfile &profile() const
    {
        return profileByName(GetParam());
    }
};

TEST_P(EveryProfile, ParametersAreSane)
{
    const WorkloadProfile &p = profile();
    EXPECT_GT(p.memFraction, 0.0);
    EXPECT_LE(p.memFraction, 1.0);
    EXPECT_GE(p.writeFraction, 0.0);
    EXPECT_LE(p.writeFraction, 1.0);
    EXPECT_GE(p.hotFraction, 0.0);
    EXPECT_LE(p.hotFraction, 1.0);
    EXPECT_LE(p.seqFraction + p.chaseFraction, 1.0);
    EXPECT_GE(p.numStreams, 1u);
    EXPECT_GE(p.numWriteStreams, 1u);
    EXPECT_GE(p.numChains, 1u);
    EXPECT_GE(p.clusterBlocks, 1u);
    EXPECT_GT(p.footprintBytes, p.hotBytes);
    EXPECT_EQ(p.streamStride % 64, 0u);
}

TEST_P(EveryProfile, GeneratesDeterministically)
{
    SyntheticGenerator a(profile(), 3000, 7);
    SyntheticGenerator b(profile(), 3000, 7);
    TraceInstr ia, ib;
    while (a.next(ia)) {
        ASSERT_TRUE(b.next(ib));
        ASSERT_EQ(ia.op, ib.op);
        ASSERT_EQ(ia.addr, ib.addr);
    }
    EXPECT_FALSE(b.next(ib));
}

TEST_P(EveryProfile, StaysInsideFootprint)
{
    const WorkloadProfile &p = profile();
    SyntheticGenerator g(p, 10000, 11);
    TraceInstr in;
    while (g.next(in)) {
        if (in.op == TraceInstr::Op::Compute)
            continue;
        EXPECT_GE(in.addr, p.regionBase);
        EXPECT_LT(in.addr, p.regionBase + p.footprintBytes);
    }
}

TEST_P(EveryProfile, MemoryMixRoughlyMatchesDeclaration)
{
    const WorkloadProfile &p = profile();
    SyntheticGenerator g(p, 40000, 13);
    TraceInstr in;
    std::uint64_t mem = 0, writes = 0, chase = 0;
    while (g.next(in)) {
        if (in.op == TraceInstr::Op::Compute)
            continue;
        mem += 1;
        writes += in.op == TraceInstr::Op::Store;
        chase += in.depChain;
    }
    ASSERT_GT(mem, 0u);
    // Clusters amplify memory ops, so the observed fraction is at least
    // the declared one and bounded well below 1.
    EXPECT_GE(double(mem) / 40000.0, p.memFraction * 0.8);
    // Write share: store clusters can skew, allow a generous band.
    EXPECT_NEAR(double(writes) / double(mem), p.writeFraction,
                std::max(0.20, p.writeFraction * 0.75));
    if (p.chaseFraction == 0.0)
        EXPECT_EQ(chase, 0u);
    else
        EXPECT_GT(chase, 0u);
}

TEST_P(EveryProfile, ChainIdsWithinDeclaredRange)
{
    const WorkloadProfile &p = profile();
    SyntheticGenerator g(p, 20000, 17);
    TraceInstr in;
    while (g.next(in))
        if (in.depChain) {
            ASSERT_LT(in.chainId, p.numChains);
        }
}

INSTANTIATE_TEST_SUITE_P(Spec2000, EveryProfile,
                         testing::ValuesIn(specProfileNames()),
                         [](const auto &info) { return info.param; });
