/**
 * @file
 * Stall attribution unit tests: the classification priority (data
 * transfer beats command issue beats pending-data beats the scheduler's
 * cause), the telescoping identity, the per-bank breakdown, and the
 * determinism of the JSON export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "obs/stall_attribution.hh"

using namespace bsim;
using namespace bsim::dram;
using namespace bsim::obs;

namespace
{

StallAttribution
twoBankChannel()
{
    return StallAttribution(1, 2, {"ch0_r0_b0", "ch0_r0_b1"});
}

} // namespace

TEST(StallAttribution, ClassificationPriority)
{
    StallAttribution sa = twoBankChannel();

    // A read issues at 0 with its burst at [5, 9).
    sa.noteBurst(0, 5, 9);
    sa.account(0, 0, true, StallCause::None); // prep_issue
    // 1-4: command slot idle, only the booked burst outstanding.
    for (Tick t = 1; t < 5; ++t)
        sa.account(0, t, false, StallCause::NoWork); // pending_data
    // 5-8: the bus streams; even an issuing slot counts as transfer.
    sa.account(0, 5, true, StallCause::None);
    for (Tick t = 6; t < 9; ++t)
        sa.account(0, t, false, StallCause::NoWork);
    // 9: nothing left at all.
    sa.account(0, 9, false, StallCause::NoWork);
    // 10: a timing stall passes through untouched.
    sa.account(0, 10, false, StallCause::TimingTRCD);

    EXPECT_EQ(sa.count(0, StallCause::PrepIssue), 1u);
    EXPECT_EQ(sa.count(0, StallCause::PendingData), 4u);
    EXPECT_EQ(sa.count(0, StallCause::DataTransfer), 4u);
    EXPECT_EQ(sa.count(0, StallCause::NoWork), 1u);
    EXPECT_EQ(sa.count(0, StallCause::TimingTRCD), 1u);
    EXPECT_EQ(sa.cycles(0), 11u);
}

TEST(StallAttribution, TelescopingIdentity)
{
    StallAttribution sa(2, 1, {"ch0_r0_b0", "ch1_r0_b0"});
    const StallCause causes[] = {StallCause::NoWork, StallCause::TimingTRP,
                                 StallCause::ArbLoss,
                                 StallCause::ThresholdGated};
    for (Tick t = 0; t < 1000; ++t)
        for (std::uint32_t ch = 0; ch < 2; ++ch)
            sa.account(ch, t, (t + ch) % 3 == 0, causes[(t + ch) % 4]);

    const auto totals = sa.totals();
    std::uint64_t sum = 0;
    for (auto n : totals)
        sum += n;
    EXPECT_EQ(sum, sa.cycles(0) + sa.cycles(1));
    for (std::uint32_t ch = 0; ch < 2; ++ch) {
        EXPECT_EQ(sa.cycles(ch), 1000u);
        std::uint64_t per = 0;
        for (std::size_t i = 0; i < kNumStallCauses; ++i)
            per += sa.count(ch, StallCause(i));
        EXPECT_EQ(per, sa.cycles(ch));
    }
}

TEST(StallAttribution, OverlappingBurstsExtendTheBusyHorizon)
{
    StallAttribution sa = twoBankChannel();
    // Back-to-back bursts [2, 6) and [6, 10): cycles 2-9 all transfer.
    sa.noteBurst(0, 2, 6);
    sa.noteBurst(0, 6, 10);
    for (Tick t = 0; t < 12; ++t)
        sa.account(0, t, false, StallCause::NoWork);
    EXPECT_EQ(sa.count(0, StallCause::DataTransfer), 8u);
    EXPECT_EQ(sa.count(0, StallCause::PendingData), 2u); // cycles 0-1
    EXPECT_EQ(sa.count(0, StallCause::NoWork), 2u);      // cycles 10-11
}

TEST(StallAttribution, BankBreakdownAppearsInJson)
{
    StallAttribution sa = twoBankChannel();
    sa.account(0, 0, false, StallCause::TimingTRP);
    sa.noteBankStall(0, 1, StallCause::TimingTRP);
    sa.noteBankStall(0, 1, StallCause::TimingTRP);

    std::ostringstream os;
    sa.writeJson(os);
    const auto v = parseJson(os.str());
    ASSERT_TRUE(v.has_value());
    const JsonValue &banks = *v->find("banks");
    ASSERT_EQ(banks.size(), 1u); // silent bank 0 omitted
    EXPECT_EQ(banks.array[0].find("bank")->string, "ch0_r0_b1");
    EXPECT_EQ(banks.array[0].find("causes")->find("t_rp")->number, 2.0);
}

TEST(StallAttribution, JsonIsDeterministic)
{
    auto run = [] {
        StallAttribution sa = twoBankChannel();
        sa.noteBurst(0, 3, 7);
        for (Tick t = 0; t < 64; ++t)
            sa.account(0, t, t % 5 == 0,
                       t % 2 ? StallCause::TimingTRCD
                             : StallCause::NoWork);
        sa.noteBankStall(0, 0, StallCause::TimingTFAW);
        std::ostringstream os;
        sa.writeJson(os);
        return os.str();
    };
    EXPECT_EQ(run(), run());
}
