/**
 * @file
 * Host-side self-profiler tests: off-by-default no-op, scope tree
 * aggregation (counts, depths, inclusive/exclusive times), collect()
 * validity, text rendering, and the determinism guarantee — enabling
 * --selfprof must leave the result JSON byte-identical, because host
 * wall time is exported only through the text report and telemetry
 * side channels.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>

#include "obs/selfprof.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"

using namespace bsim;
namespace prof = bsim::obs::prof;

namespace
{

/** Every test starts and ends with the thread's profiler disarmed. */
class SelfProf : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        prof::setEnabled(false);
        prof::reset();
    }
    void TearDown() override
    {
        prof::setEnabled(false);
        prof::reset();
    }
};

/** Burn a little real time so scopes accumulate nonzero ticks. */
void
spin()
{
    volatile unsigned x = 0;
    for (unsigned i = 0; i < 50'000; ++i)
        x = x + i;
}

std::string
jsonOf(const sim::RunResult &r)
{
    std::ostringstream os;
    sim::writeResultJson(os, r);
    return os.str();
}

} // namespace

TEST_F(SelfProf, OffByDefaultScopesAreNoOpsAndCollectIsInvalid)
{
    EXPECT_FALSE(prof::enabled());
    {
        prof::Scope s(prof::Phase::Run);
        spin();
    }
    const prof::SelfProfile p = prof::collect();
    EXPECT_FALSE(p.valid);
    EXPECT_TRUE(p.nodes.empty());
    EXPECT_EQ(p.totalUs, 0.0);
}

TEST_F(SelfProf, ScopesAggregateIntoAPhaseTree)
{
    prof::setEnabled(true);
    {
        prof::Scope run(prof::Phase::Run);
        for (int i = 0; i < 3; ++i) {
            prof::Scope h(prof::Phase::Horizon);
            spin();
        }
        {
            prof::Scope c(prof::Phase::CtrlTick);
            prof::Scope s(prof::Phase::SchedPick);
            spin();
        }
    }
    const prof::SelfProfile p = prof::collect();
    ASSERT_TRUE(p.valid);

    // Preorder: run, its children in creation order, grandchildren
    // under their parent. Re-entering a phase aggregates into one node.
    ASSERT_EQ(p.nodes.size(), 4u);
    EXPECT_EQ(p.nodes[0].phase, prof::Phase::Run);
    EXPECT_EQ(p.nodes[0].depth, 0);
    EXPECT_EQ(p.nodes[0].count, 1u);
    EXPECT_EQ(p.nodes[1].phase, prof::Phase::Horizon);
    EXPECT_EQ(p.nodes[1].depth, 1);
    EXPECT_EQ(p.nodes[1].count, 3u);
    EXPECT_EQ(p.nodes[2].phase, prof::Phase::CtrlTick);
    EXPECT_EQ(p.nodes[2].depth, 1);
    EXPECT_EQ(p.nodes[3].phase, prof::Phase::SchedPick);
    EXPECT_EQ(p.nodes[3].depth, 2);

    // Inclusive time covers the children; the root's inclusive time is
    // the profile total; exclusive times land in the per-phase sums.
    EXPECT_GE(p.nodes[0].totalUs,
              p.nodes[1].totalUs + p.nodes[2].totalUs);
    EXPECT_DOUBLE_EQ(p.totalUs, p.nodes[0].totalUs);
    EXPECT_GT(p.selfUsByPhase[std::size_t(prof::Phase::Horizon)], 0.0);
    EXPECT_GT(p.selfUsByPhase[std::size_t(prof::Phase::SchedPick)], 0.0);
    // ctrl_tick's exclusive time excludes sched_pick's.
    EXPECT_LE(p.nodes[2].selfUs, p.nodes[2].totalUs);
}

TEST_F(SelfProf, ResetDropsTheTree)
{
    prof::setEnabled(true);
    {
        prof::Scope s(prof::Phase::Run);
        spin();
    }
    prof::reset();
    const prof::SelfProfile p = prof::collect();
    EXPECT_TRUE(p.valid);
    EXPECT_TRUE(p.nodes.empty());
}

TEST_F(SelfProf, WriteTextRendersEveryNode)
{
    prof::setEnabled(true);
    {
        prof::Scope run(prof::Phase::Run);
        prof::Scope h(prof::Phase::Horizon);
        spin();
    }
    const prof::SelfProfile p = prof::collect();
    std::ostringstream os;
    p.writeText(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("Self-profile"), std::string::npos);
    EXPECT_NE(text.find("run"), std::string::npos);
    EXPECT_NE(text.find("horizon"), std::string::npos);
    EXPECT_NE(text.find("total"), std::string::npos);
}

TEST_F(SelfProf, ExperimentAttachesAValidProfileAndDisarmsAfter)
{
    sim::ExperimentConfig cfg;
    cfg.workload = "pchase";
    cfg.instructions = 1500;
    cfg.engine = sim::EngineKind::Skip;
    cfg.obs.selfProf = true;
    const sim::RunResult r = sim::runExperiment(cfg);
    ASSERT_TRUE(r.selfprof);
    EXPECT_TRUE(r.selfprof->valid);
    EXPECT_FALSE(r.selfprof->nodes.empty());
    EXPECT_EQ(r.selfprof->nodes[0].phase, prof::Phase::Run);
    // The guard must disarm the thread-local flag on exit so profiling
    // never leaks into a later run on the same (worker) thread.
    EXPECT_FALSE(prof::enabled());

    // The profile reaches the text report...
    std::ostringstream os;
    sim::writeResultText(os, r);
    EXPECT_NE(os.str().find("Self-profile"), std::string::npos);
}

TEST_F(SelfProf, SelfprofNeverChangesTheResultJson)
{
    for (const sim::EngineKind engine :
         {sim::EngineKind::Step, sim::EngineKind::Skip}) {
        sim::ExperimentConfig cfg;
        cfg.workload = "mcf";
        cfg.instructions = 1500;
        cfg.engine = engine;
        const std::string base = jsonOf(sim::runExperiment(cfg));
        cfg.obs.selfProf = true;
        EXPECT_EQ(jsonOf(sim::runExperiment(cfg)), base)
            << sim::engineKindName(engine);
    }
}
