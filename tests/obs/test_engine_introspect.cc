/**
 * @file
 * Skip-engine introspection tests: the telescoping identity
 * (stepped + skipped == mem_cycles, per-reason sums match totals) for
 * every scheduler family under both engines, span-histogram bucketing,
 * JSON schema, and the guarantee that turning introspection on never
 * perturbs the simulation itself.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/error.hh"
#include "common/json.hh"
#include "obs/engine_introspect.hh"
#include "obs/observability.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"

using namespace bsim;
using obs::EngineIntrospect;
using obs::WakeReason;
using obs::WakeSource;

namespace
{

constexpr ctrl::Mechanism kFamilies[] = {
    ctrl::Mechanism::BkInOrder,       // per-bank FIFOs
    ctrl::Mechanism::RowHit,          // row-hit first
    ctrl::Mechanism::Intel,           // read-first
    ctrl::Mechanism::Burst,           // the paper's mechanism
    ctrl::Mechanism::AdaptiveHistory, // history-based
};

sim::RunResult
runWith(ctrl::Mechanism m, sim::EngineKind engine, bool introspect,
        const char *workload = "pchase")
{
    sim::ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.mechanism = m;
    cfg.instructions = 2000;
    cfg.engine = engine;
    cfg.obs.engineIntrospect = introspect;
    return sim::runExperiment(cfg);
}

} // namespace

TEST(EngineIntrospect, IdentityHoldsForEveryFamilyUnderBothEngines)
{
    for (const ctrl::Mechanism m : kFamilies) {
        for (const sim::EngineKind e :
             {sim::EngineKind::Step, sim::EngineKind::Skip}) {
            const sim::RunResult r = runWith(m, e, true);
            ASSERT_TRUE(r.obs);
            const EngineIntrospect *in = r.obs->introspect();
            ASSERT_NE(in, nullptr) << ctrl::mechanismName(m);
            EXPECT_TRUE(in->identityHolds(r.memCycles))
                << ctrl::mechanismName(m) << "/"
                << sim::engineKindName(e) << ": stepped "
                << in->steppedCycles() << " + skipped "
                << in->skippedCycles() << " vs mem cycles "
                << r.memCycles;
            EXPECT_EQ(in->steppedCycles() + in->skippedCycles(),
                      r.memCycles);
            if (e == sim::EngineKind::Step) {
                // The step engine never skips — by definition.
                EXPECT_EQ(in->skippedCycles(), 0u);
                EXPECT_EQ(in->skipSpans(), 0u);
            } else {
                // pchase is the skip engine's home turf: serialized
                // misses leave long fully-dead spans.
                EXPECT_GT(in->skippedCycles(), 0u)
                    << ctrl::mechanismName(m);
            }
        }
    }
}

TEST(EngineIntrospect, IdentityHoldsOnDenseTrafficToo)
{
    for (const ctrl::Mechanism m : kFamilies) {
        const sim::RunResult r =
            runWith(m, sim::EngineKind::Skip, true, "mcf");
        const EngineIntrospect *in = r.obs->introspect();
        ASSERT_NE(in, nullptr);
        EXPECT_TRUE(in->identityHolds(r.memCycles))
            << ctrl::mechanismName(m);
    }
}

TEST(EngineIntrospect, PerReasonSumsMatchTheirTotals)
{
    const sim::RunResult r =
        runWith(ctrl::Mechanism::Burst, sim::EngineKind::Skip, true);
    const EngineIntrospect *in = r.obs->introspect();
    ASSERT_NE(in, nullptr);

    std::uint64_t wakes = 0, skipped = 0, blocked = 0;
    for (std::size_t i = 0; i < obs::kNumWakeReasons; ++i) {
        wakes += in->wakeCount(WakeReason(i));
        skipped += in->skippedBy(WakeReason(i));
        blocked += in->blockedCount(WakeReason(i));
    }
    EXPECT_EQ(wakes, in->skipSpans());
    EXPECT_EQ(skipped, in->skippedCycles());
    EXPECT_EQ(blocked, in->blockedTotal());

    std::uint64_t spans = 0;
    for (std::size_t b = 0; b < obs::kNumSpanBuckets; ++b)
        spans += in->spanBucket(b);
    EXPECT_EQ(spans, in->skipSpans());
}

TEST(EngineIntrospect, IntrospectionDoesNotPerturbTheSimulation)
{
    for (const ctrl::Mechanism m : kFamilies) {
        const sim::RunResult off =
            runWith(m, sim::EngineKind::Skip, false);
        const sim::RunResult on =
            runWith(m, sim::EngineKind::Skip, true);
        EXPECT_EQ(off.memCycles, on.memCycles)
            << ctrl::mechanismName(m);
        EXPECT_EQ(off.execCpuCycles, on.execCpuCycles)
            << ctrl::mechanismName(m);
    }
}

TEST(EngineIntrospect, ResultJsonGainsTheSectionOnlyWhenEnabled)
{
    const sim::RunResult off =
        runWith(ctrl::Mechanism::Burst, sim::EngineKind::Skip, false);
    const sim::RunResult on =
        runWith(ctrl::Mechanism::Burst, sim::EngineKind::Skip, true);
    std::ostringstream a, b;
    sim::writeResultJson(a, off);
    sim::writeResultJson(b, on);
    EXPECT_EQ(a.str().find("engine_introspect"), std::string::npos);
    EXPECT_NE(b.str().find("engine_introspect"), std::string::npos);
}

TEST(EngineIntrospect, JsonExportHasTheDocumentedSchema)
{
    const sim::RunResult r =
        runWith(ctrl::Mechanism::Burst, sim::EngineKind::Skip, true);
    std::ostringstream os;
    r.obs->writeIntrospectJson(os);
    std::string err;
    const auto doc = parseJson(os.str(), &err);
    ASSERT_TRUE(doc) << err;

    for (const char *k : {"stepped_cycles", "skipped_cycles",
                          "skip_spans", "blocked_decisions"}) {
        const JsonValue *v = doc->find(k);
        ASSERT_NE(v, nullptr) << k;
        EXPECT_TRUE(v->isNumber()) << k;
    }
    // The arrays are sparse: only reasons/buckets that fired appear.
    const JsonValue *reasons = doc->find("wake_reasons");
    ASSERT_NE(reasons, nullptr);
    ASSERT_TRUE(reasons->isArray());
    EXPECT_GT(reasons->size(), 0u);
    EXPECT_LE(reasons->size(), obs::kNumWakeReasons);
    double wakes = 0, skipped = 0;
    for (const JsonValue &e : reasons->array) {
        ASSERT_TRUE(e.find("reason") && e.find("reason")->isString());
        ASSERT_TRUE(e.find("wakes") && e.find("skipped_cycles") &&
                    e.find("blocked"));
        EXPECT_TRUE(e.find("wakes")->number > 0 ||
                    e.find("blocked")->number > 0);
        wakes += e.find("wakes")->number;
        skipped += e.find("skipped_cycles")->number;
    }
    const EngineIntrospect *in = r.obs->introspect();
    EXPECT_EQ(wakes, double(in->skipSpans()));
    EXPECT_EQ(skipped, double(in->skippedCycles()));
    const JsonValue *hist = doc->find("span_histogram");
    ASSERT_NE(hist, nullptr);
    EXPECT_GT(hist->size(), 0u);
    EXPECT_LE(hist->size(), obs::kNumSpanBuckets);
    double spans = 0;
    for (const JsonValue &e : hist->array) {
        ASSERT_TRUE(e.find("span") && e.find("count"));
        spans += e.find("count")->number;
    }
    EXPECT_EQ(spans, double(in->skipSpans()));
    for (const char *k : {"sched_memo", "front_horizon"}) {
        const JsonValue *v = doc->find(k);
        ASSERT_NE(v, nullptr) << k;
        EXPECT_TRUE(v->isObject()) << k;
        EXPECT_TRUE(v->find("hits") && v->find("misses")) << k;
    }
}

TEST(EngineIntrospect, WriteIntrospectJsonThrowsWhenPillarOff)
{
    const sim::RunResult r =
        runWith(ctrl::Mechanism::Burst, sim::EngineKind::Skip, false);
    std::ostringstream os;
    if (r.obs) {
        EXPECT_THROW(r.obs->writeIntrospectJson(os), SimError);
    }
}

TEST(EngineIntrospect, SpanHistogramBucketsByLog2)
{
    EngineIntrospect in(2);
    in.noteStepped(5);
    in.noteSkip({WakeReason::Response, 0}, 1);            // bucket 0: 1
    in.noteSkip({WakeReason::Response, 1}, 3);            // bucket 1: 2-3
    in.noteSkip({WakeReason::SchedBound, 0}, 4);          // bucket 2: 4-7
    in.noteSkip({WakeReason::Refresh, -1},
                std::uint64_t(1) << 20);                  // last: >=2^20
    EXPECT_EQ(in.spanBucket(0), 1u);
    EXPECT_EQ(in.spanBucket(1), 1u);
    EXPECT_EQ(in.spanBucket(2), 1u);
    EXPECT_EQ(in.spanBucket(obs::kNumSpanBuckets - 1), 1u);
    EXPECT_EQ(in.skipSpans(), 4u);
    EXPECT_EQ(in.skippedCycles(), 8u + (std::uint64_t(1) << 20));
    EXPECT_EQ(in.wakeCount(WakeReason::Response), 2u);
    EXPECT_EQ(in.skippedBy(WakeReason::SchedBound), 4u);

    in.noteBlocked({WakeReason::SchedBound, 0});
    EXPECT_EQ(in.blockedTotal(), 1u);
    EXPECT_EQ(in.blockedCount(WakeReason::SchedBound), 1u);

    const std::uint64_t mem = 5 + in.skippedCycles();
    EXPECT_TRUE(in.identityHolds(mem));
    EXPECT_FALSE(in.identityHolds(mem + 1));
}
