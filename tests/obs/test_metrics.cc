/**
 * @file
 * Metrics sampler tests: epoch boundaries, delta arithmetic, the
 * exactly-ceil(cycles/interval)-rows contract, and the CSV/JSON
 * exports.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/json.hh"
#include "obs/metrics.hh"
#include "obs/observability.hh"
#include "sim/experiment.hh"

#include "sim_error_util.hh"

using namespace bsim;
using namespace bsim::obs;

namespace
{

MetricsSnapshot
snapshotAt(Tick now)
{
    MetricsSnapshot s;
    s.now = now;
    s.channels = 2;
    return s;
}

} // namespace

TEST(MetricsSampler, EpochEndFiresEveryInterval)
{
    MetricsSampler ms(100, {});
    EXPECT_FALSE(ms.epochEnd(0));
    EXPECT_FALSE(ms.epochEnd(98));
    EXPECT_TRUE(ms.epochEnd(99));
    EXPECT_FALSE(ms.epochEnd(100));
    EXPECT_TRUE(ms.epochEnd(199));
}

TEST(MetricsSampler, DiffsCumulativeCounters)
{
    MetricsSampler ms(100, {"b0"});

    MetricsSnapshot s1 = snapshotAt(99);
    s1.dataBusyCycles = 80; // of 2 lanes x 100 cycles
    s1.cmdBusyCycles = 40;
    s1.rowHits = 6;
    s1.rowConflicts = 2;
    s1.readsCompleted = 7;
    s1.writesCompleted = 3;
    s1.burstsFormed = 2;
    s1.burstJoins = 4;
    s1.bankReadQ = {5};
    s1.bankWriteQ = {1};
    ms.sample(s1);

    MetricsSnapshot s2 = snapshotAt(199);
    s2.dataBusyCycles = 120; // +40
    s2.cmdBusyCycles = 60;
    s2.rowHits = 6; // no new hits
    s2.rowConflicts = 6;
    s2.readsCompleted = 17;
    s2.writesCompleted = 3;
    s2.burstsFormed = 2;
    s2.burstJoins = 4;
    ms.sample(s2);

    ASSERT_EQ(ms.rows().size(), 2u);
    const MetricsRow &r0 = ms.rows()[0];
    EXPECT_EQ(r0.tickStart, 0u);
    EXPECT_EQ(r0.tickEnd, 100u);
    EXPECT_DOUBLE_EQ(r0.dataBusUtil, 0.4);
    EXPECT_DOUBLE_EQ(r0.addrBusUtil, 0.2);
    EXPECT_DOUBLE_EQ(r0.rowHitRate, 0.75);
    EXPECT_EQ(r0.epochReads, 7u);
    EXPECT_EQ(r0.epochWrites, 3u);
    EXPECT_DOUBLE_EQ(r0.avgBurstLen, 3.0); // (2 formed + 4 joins) / 2
    EXPECT_EQ(r0.bankReadQ, (std::vector<std::uint32_t>{5}));

    const MetricsRow &r1 = ms.rows()[1];
    EXPECT_DOUBLE_EQ(r1.dataBusUtil, 0.2);
    EXPECT_DOUBLE_EQ(r1.rowHitRate, 0.0);
    EXPECT_EQ(r1.epochReads, 10u);
    EXPECT_DOUBLE_EQ(r1.avgBurstLen, 0.0); // no bursts formed this epoch
}

TEST(MetricsSampler, PartialFinalEpochAndIdempotentFlush)
{
    MetricsSampler ms(100, {});
    ms.sample(snapshotAt(99));
    ms.sample(snapshotAt(199));
    ms.sample(snapshotAt(249)); // run ended at tick 250: partial epoch
    ASSERT_EQ(ms.rows().size(), 3u);
    EXPECT_EQ(ms.rows()[2].tickStart, 200u);
    EXPECT_EQ(ms.rows()[2].tickEnd, 250u);

    // Flushing the same boundary again must not add a row.
    ms.sample(snapshotAt(249));
    EXPECT_EQ(ms.rows().size(), 3u);
}

TEST(MetricsSampler, PartialEpochScalesUtilizationByElapsed)
{
    MetricsSampler ms(100, {});
    MetricsSnapshot s = snapshotAt(49); // 50-cycle partial epoch
    s.channels = 1;
    s.dataBusyCycles = 25;
    ms.sample(s);
    ASSERT_EQ(ms.rows().size(), 1u);
    EXPECT_DOUBLE_EQ(ms.rows()[0].dataBusUtil, 0.5);
}

TEST(MetricsSamplerDeath, ZeroIntervalIsFatal)
{
    EXPECT_SIM_ERROR(MetricsSampler(0, {}), bsim::ErrorCategory::Config, "interval");
}

TEST(MetricsSampler, CsvHasHeaderAndOneLinePerRow)
{
    MetricsSampler ms(100, {"ch0_r0_b0", "ch0_r0_b1"});
    MetricsSnapshot s = snapshotAt(99);
    s.bankReadQ = {3, 1};
    s.bankWriteQ = {0, 2};
    ms.sample(s);

    std::ostringstream os;
    ms.writeCsv(os);
    const std::string out = os.str();

    std::size_t lines = 0;
    for (char c : out)
        lines += c == '\n';
    EXPECT_EQ(lines, 2u); // header + 1 row

    EXPECT_NE(out.find("rq_ch0_r0_b1"), std::string::npos);
    EXPECT_NE(out.find("wq_ch0_r0_b0"), std::string::npos);
    // The row carries the per-bank occupancy in label order.
    EXPECT_NE(out.find(",3,1,0,2\n"), std::string::npos);
}

TEST(MetricsSampler, JsonExportParses)
{
    MetricsSampler ms(100, {"b0"});
    MetricsSnapshot s = snapshotAt(99);
    s.readsCompleted = 5;
    s.bankReadQ = {2};
    s.bankWriteQ = {1};
    ms.sample(s);

    std::ostringstream os;
    ms.writeJson(os);
    const auto v = parseJson(os.str());
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(v->find("interval")->number, 100.0);
    const JsonValue *rows = v->find("rows");
    ASSERT_NE(rows, nullptr);
    ASSERT_EQ(rows->size(), 1u);
    EXPECT_DOUBLE_EQ(rows->array[0].find("epoch_reads")->number, 5.0);
    EXPECT_DOUBLE_EQ(rows->array[0].find("bank_read_q")->array[0].number,
                     2.0);
}

TEST(MetricsRun, EmitsExactlyCeilCyclesOverIntervalRows)
{
    for (const Tick interval : {512u, 1000u, 4096u}) {
        sim::ExperimentConfig cfg;
        cfg.workload = "swim";
        cfg.mechanism = ctrl::Mechanism::BurstTH;
        cfg.instructions = 20'000;
        cfg.obs.metricsInterval = interval;

        const sim::RunResult r = sim::runExperiment(cfg);
        ASSERT_NE(r.obs, nullptr);
        ASSERT_NE(r.obs->sampler(), nullptr);
        const MetricsSampler &ms = *r.obs->sampler();

        const std::uint64_t expected =
            (r.memCycles + interval - 1) / interval;
        EXPECT_EQ(ms.rows().size(), expected)
            << "interval " << interval << ", " << r.memCycles
            << " mem cycles";
        EXPECT_EQ(ms.rows().back().tickEnd, r.memCycles);

        // Per-bank columns cover the whole machine.
        const auto &dram = sim::SystemConfig::baseline().dram;
        EXPECT_EQ(ms.bankLabels().size(),
                  std::size_t(dram.channels) * dram.ranksPerChannel *
                      dram.banksPerRank);
        for (const auto &row : ms.rows()) {
            EXPECT_EQ(row.bankReadQ.size(), ms.bankLabels().size());
            EXPECT_EQ(row.bankWriteQ.size(), ms.bankLabels().size());
        }
    }
}

TEST(MetricsRun, BurstThresholdGatesRpWpFlags)
{
    sim::ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.instructions = 20'000;
    cfg.obs.metricsInterval = 256;

    const sim::RunResult r = sim::runExperiment(cfg);
    ASSERT_NE(r.obs->sampler(), nullptr);
    for (const auto &row : r.obs->sampler()->rows()) {
        // Burst_TH: below the threshold preemption is allowed, above it
        // piggybacking — never both at once.
        EXPECT_FALSE(row.rpActive && row.wpActive);
        if (row.writesOutstanding < 52)
            EXPECT_TRUE(row.rpActive);
        if (row.writesOutstanding > 52)
            EXPECT_TRUE(row.wpActive);
    }
}

TEST(MetricsSampler, IdleCoreRowHitRateIsCsvZeroAndJsonNull)
{
    // Satellite regression: a core with no classified access in an
    // epoch has no row hit rate. The sampler keeps a NaN sentinel and
    // the writers must map it to 0 (CSV) / null (JSON) — a literal
    // `nan` cell broke downstream CSV consumers once.
    MetricsSampler ms(100, {});
    MetricsSnapshot s = snapshotAt(99);
    s.readsCompleted = 5;
    s.rowHits = 3;
    s.rowConflicts = 2;
    s.coreReadQ = {1, 0};
    s.coreWriteQ = {0, 0};
    s.coreRowHits = {3, 0};
    s.coreRowAccesses = {5, 0}; // core 1 idle this epoch
    ms.sample(s);

    ASSERT_EQ(ms.rows().size(), 1u);
    ASSERT_EQ(ms.rows()[0].coreRowHitRate.size(), 2u);
    EXPECT_TRUE(std::isnan(ms.rows()[0].coreRowHitRate[1]));
    EXPECT_DOUBLE_EQ(ms.rows()[0].coreRowHitRate[0], 0.6);

    std::ostringstream csv;
    ms.writeCsv(csv);
    EXPECT_NE(csv.str().find("rhr_core1"), std::string::npos);
    EXPECT_EQ(csv.str().find("nan"), std::string::npos) << csv.str();

    std::ostringstream json;
    ms.writeJson(json);
    EXPECT_NE(json.str().find("null"), std::string::npos) << json.str();
    EXPECT_EQ(json.str().find("nan"), std::string::npos) << json.str();
}
