/**
 * @file
 * Latency breakdown tests: phase arithmetic, class routing, and the
 * phases-sum-to-total invariant over full simulated runs.
 */

#include <gtest/gtest.h>

#include "obs/latency_breakdown.hh"
#include "obs/observability.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace bsim;
using namespace bsim::obs;

namespace
{

ctrl::MemAccess
access(AccessType type, Tick arrival, Tick picked, Tick first_cmd,
       Tick data_start, Tick data_end, dram::RowOutcome outcome)
{
    ctrl::MemAccess a;
    a.id = 1;
    a.type = type;
    a.arrival = arrival;
    a.pickedAt = picked;
    a.firstCmdAt = first_cmd;
    a.dataStart = data_start;
    a.dataEnd = data_end;
    a.outcome = outcome;
    return a;
}

} // namespace

TEST(LatencyBreakdown, SplitsPhasesOfOneAccess)
{
    LatencyBreakdown lat;
    lat.record(access(AccessType::Read, 10, 15, 22, 30, 34,
                      dram::RowOutcome::Hit));

    const PhaseStats &ps = lat.of(AccessClass::ReadHit);
    EXPECT_EQ(ps.count(), 1u);
    EXPECT_DOUBLE_EQ(ps.queueMean.mean(), 5.0);
    EXPECT_DOUBLE_EQ(ps.pickMean.mean(), 7.0);
    EXPECT_DOUBLE_EQ(ps.prepMean.mean(), 8.0);
    EXPECT_DOUBLE_EQ(ps.dataMean.mean(), 4.0);
    EXPECT_DOUBLE_EQ(ps.totalMean.mean(), 24.0);
    EXPECT_EQ(ps.total.total(), 1u);
    EXPECT_EQ(lat.recorded(), 1u);
}

TEST(LatencyBreakdown, RoutesClasses)
{
    LatencyBreakdown lat;
    lat.record(access(AccessType::Read, 0, 1, 2, 3, 7,
                      dram::RowOutcome::Hit));
    lat.record(access(AccessType::Read, 0, 1, 2, 3, 7,
                      dram::RowOutcome::Conflict));
    lat.record(access(AccessType::Write, 0, 1, 2, 3, 7,
                      dram::RowOutcome::Hit));
    lat.record(access(AccessType::Write, 0, 1, 2, 3, 7,
                      dram::RowOutcome::Empty));

    EXPECT_EQ(lat.of(AccessClass::ReadHit).count(), 1u);
    EXPECT_EQ(lat.of(AccessClass::ReadMiss).count(), 1u);
    EXPECT_EQ(lat.of(AccessClass::WriteHit).count(), 1u);
    EXPECT_EQ(lat.of(AccessClass::WriteMiss).count(), 1u);
}

TEST(LatencyBreakdown, PickFallsBackToFirstCmd)
{
    // Schedulers without an explicit arbitration step never stamp
    // pickedAt; the pick phase is then 0 and queue absorbs the wait.
    LatencyBreakdown lat;
    lat.record(access(AccessType::Read, 10, kTickMax, 22, 30, 34,
                      dram::RowOutcome::Hit));
    const PhaseStats &ps = lat.of(AccessClass::ReadHit);
    EXPECT_DOUBLE_EQ(ps.queueMean.mean(), 12.0);
    EXPECT_DOUBLE_EQ(ps.pickMean.mean(), 0.0);
}

TEST(LatencyBreakdown, ForwardedReadsTalliedSeparately)
{
    LatencyBreakdown lat;
    ctrl::MemAccess a;
    a.type = AccessType::Read;
    a.forwarded = true;
    a.arrival = 5;
    a.dataEnd = 7;
    lat.record(a);

    EXPECT_EQ(lat.recorded(), 0u);
    EXPECT_EQ(lat.forwardedMean().count(), 1u);
    EXPECT_DOUBLE_EQ(lat.forwardedMean().mean(), 2.0);
    for (std::size_t i = 0; i < kNumAccessClasses; ++i)
        EXPECT_EQ(lat.of(AccessClass(i)).count(), 0u);
}

TEST(LatencyBreakdownDeath, NonMonotonicTimestampsPanic)
{
    LatencyBreakdown lat;
    EXPECT_DEATH(lat.record(access(AccessType::Read, 10, 8, 6, 4, 2,
                                   dram::RowOutcome::Hit)),
                 "non-monotonic");
}

namespace
{

/** Phase sums must telescope to the total, class by class. */
void
expectPhasesSumToTotal(const LatencyBreakdown &lat)
{
    std::uint64_t recorded = 0;
    for (std::size_t i = 0; i < kNumAccessClasses; ++i) {
        const PhaseStats &ps = lat.of(AccessClass(i));
        recorded += ps.count();
        const double phase_sum = ps.queueMean.sum() + ps.pickMean.sum() +
                                 ps.prepMean.sum() + ps.dataMean.sum();
        EXPECT_DOUBLE_EQ(phase_sum, ps.totalMean.sum())
            << "class " << accessClassName(AccessClass(i));
        EXPECT_EQ(ps.queueMean.count(), ps.count());
        EXPECT_EQ(ps.total.total(), ps.count());
    }
    EXPECT_EQ(recorded, lat.recorded());
}

} // namespace

class LatencyRunTest : public ::testing::TestWithParam<ctrl::Mechanism>
{
};

TEST_P(LatencyRunTest, PhasesSumToTotalOverFullRun)
{
    sim::ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = GetParam();
    cfg.instructions = 20'000;
    cfg.obs.latencyBreakdown = true;

    const sim::RunResult r = sim::runExperiment(cfg);
    ASSERT_NE(r.obs, nullptr);
    ASSERT_NE(r.obs->latency(), nullptr);
    const LatencyBreakdown &lat = *r.obs->latency();

    expectPhasesSumToTotal(lat);

    // Every completed DRAM-serviced access is recorded exactly once, and
    // every forwarded read lands in the forwarded tally.
    EXPECT_EQ(lat.recorded() + lat.forwardedMean().count(),
              r.ctrl.reads + r.ctrl.writes);
    EXPECT_EQ(lat.forwardedMean().count(), r.ctrl.forwardedReads);
    EXPECT_GT(lat.recorded(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, LatencyRunTest,
    ::testing::Values(ctrl::Mechanism::BkInOrder, ctrl::Mechanism::RowHit,
                      ctrl::Mechanism::Intel, ctrl::Mechanism::BurstTH,
                      ctrl::Mechanism::AdaptiveHistory),
    [](const auto &info) {
        return std::string(ctrl::mechanismName(info.param));
    });

TEST(LatencyBreakdown, DisabledRunCarriesNoObservability)
{
    sim::ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.instructions = 5'000;
    const sim::RunResult r = sim::runExperiment(cfg);
    EXPECT_EQ(r.obs, nullptr);
}
