/**
 * @file
 * Critical-path tracer tests: the per-access telescoping identity
 * (blame sums exactly to measured latency) for every scheduler family
 * under both engines, reconciliation of the tracer's internal cycle
 * ledger against the aggregate stall accountant, byte-identical access
 * streams across engines, the JSONL schema, the report sections, the
 * per-core metrics columns, and the guarantee that tracing never
 * perturbs the simulation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hh"
#include "common/json.hh"
#include "obs/critpath.hh"
#include "obs/observability.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"

using namespace bsim;
using obs::CritPathTracer;

namespace
{

constexpr ctrl::Mechanism kFamilies[] = {
    ctrl::Mechanism::BkInOrder,       // per-bank FIFOs
    ctrl::Mechanism::RowHit,          // row-hit first
    ctrl::Mechanism::Intel,           // read-first
    ctrl::Mechanism::Burst,           // the paper's mechanism
    ctrl::Mechanism::AdaptiveHistory, // history-based
};

sim::RunResult
runTraced(ctrl::Mechanism m, sim::EngineKind engine,
          const char *workload = "pchase", std::uint64_t insts = 2000)
{
    sim::ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.mechanism = m;
    cfg.instructions = insts;
    cfg.engine = engine;
    cfg.obs.critPath = true;
    cfg.obs.critPathRetain = true;
    return sim::runExperiment(cfg);
}

std::uint64_t
blameSum(const CritPathTracer::Counts &c)
{
    std::uint64_t s = 0;
    for (std::uint64_t n : c)
        s += n;
    return s;
}

} // namespace

TEST(CritPath, IdentityAndLedgerHoldForEveryFamilyUnderBothEngines)
{
    for (const ctrl::Mechanism m : kFamilies) {
        for (const sim::EngineKind e :
             {sim::EngineKind::Step, sim::EngineKind::Skip}) {
            const sim::RunResult r = runTraced(m, e);
            ASSERT_TRUE(r.obs);
            const CritPathTracer *t = r.obs->critpath();
            ASSERT_NE(t, nullptr) << ctrl::mechanismName(m);
            EXPECT_GT(t->completedCount(), 0u);
            EXPECT_TRUE(t->identityHolds())
                << ctrl::mechanismName(m) << "/"
                << sim::engineKindName(e);

            // Each retained access telescopes on its own (enforced by
            // onComplete, restated here against the record).
            for (const auto &c : t->retained())
                ASSERT_EQ(blameSum(c.blame), c.latency)
                    << ctrl::mechanismName(m) << " access " << c.id;

            // The tracer's cycle ledger mirrors the aggregate stall
            // accountant exactly, cause for cause.
            ASSERT_NE(r.obs->stalls(), nullptr);
            std::string why;
            EXPECT_TRUE(t->ledgerMatches(*r.obs->stalls(), &why))
                << ctrl::mechanismName(m) << "/"
                << sim::engineKindName(e) << ": " << why;
        }
    }
}

TEST(CritPath, IdentityHoldsOnWriteHeavyDenseTrafficToo)
{
    for (const ctrl::Mechanism m : kFamilies) {
        const sim::RunResult r =
            runTraced(m, sim::EngineKind::Skip, "mcf");
        const CritPathTracer *t = r.obs->critpath();
        ASSERT_NE(t, nullptr);
        EXPECT_TRUE(t->identityHolds()) << ctrl::mechanismName(m);
        std::string why;
        EXPECT_TRUE(t->ledgerMatches(*r.obs->stalls(), &why))
            << ctrl::mechanismName(m) << ": " << why;
    }
}

TEST(CritPath, AccessStreamsAreByteIdenticalAcrossEngines)
{
    for (const ctrl::Mechanism m : kFamilies) {
        const sim::RunResult step = runTraced(m, sim::EngineKind::Step);
        const sim::RunResult skip = runTraced(m, sim::EngineKind::Skip);
        const CritPathTracer *ts = step.obs->critpath();
        const CritPathTracer *tk = skip.obs->critpath();
        ASSERT_NE(ts, nullptr);
        ASSERT_NE(tk, nullptr);
        EXPECT_EQ(ts->completedCount(), tk->completedCount())
            << ctrl::mechanismName(m);
        EXPECT_EQ(ts->digest(), tk->digest()) << ctrl::mechanismName(m);
    }
}

TEST(CritPath, TracingDoesNotPerturbTheSimulation)
{
    sim::ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.instructions = 5000;
    const sim::RunResult base = sim::runExperiment(cfg);

    const sim::RunResult traced = runTraced(ctrl::Mechanism::BurstTH,
                                            sim::EngineKind::Skip,
                                            "swim", 5000);
    EXPECT_EQ(traced.memCycles, base.memCycles);
    EXPECT_EQ(traced.execCpuCycles, base.execCpuCycles);

    // An untraced run's result JSON carries no critical_path section —
    // the baseline output is untouched when the pillar is off.
    std::ostringstream bos;
    sim::writeResultJson(bos, base);
    const auto bv = parseJson(bos.str());
    ASSERT_TRUE(bv.has_value());
    EXPECT_EQ(bv->find("critical_path"), nullptr);
}

TEST(CritPath, ResultJsonAndTextCarryTheCriticalPathSection)
{
    const sim::RunResult r =
        runTraced(ctrl::Mechanism::Burst, sim::EngineKind::Skip);
    const CritPathTracer *t = r.obs->critpath();
    ASSERT_NE(t, nullptr);

    std::ostringstream jos;
    sim::writeResultJson(jos, r);
    const auto v = parseJson(jos.str());
    ASSERT_TRUE(v.has_value());
    const JsonValue *cp = v->find("critical_path");
    ASSERT_NE(cp, nullptr);
    EXPECT_DOUBLE_EQ(cp->find("accesses")->number,
                     double(t->completedCount()));
    EXPECT_DOUBLE_EQ(cp->find("latency_cycles")->number,
                     double(t->latencyTotal()));
    ASSERT_NE(cp->find("top"), nullptr);
    EXPECT_GT(cp->find("top")->size(), 0u);
    ASSERT_NE(cp->find("per_core"), nullptr);
    EXPECT_EQ(cp->find("per_core")->size(), 1u); // single requester

    std::ostringstream tos;
    sim::writeResultText(tos, r);
    EXPECT_NE(tos.str().find("critical path ("), std::string::npos);
    EXPECT_NE(tos.str().find("per-core critical-path rollup"),
              std::string::npos);
}

TEST(CritPath, TopSlowestIsSortedBoundedAndAgreesWithRetained)
{
    const sim::RunResult r =
        runTraced(ctrl::Mechanism::RowHit, sim::EngineKind::Skip);
    const CritPathTracer *t = r.obs->critpath();
    ASSERT_NE(t, nullptr);

    const auto &top = t->topSlowest();
    ASSERT_FALSE(top.empty());
    EXPECT_LE(top.size(), 16u);
    for (std::size_t i = 1; i < top.size(); ++i)
        EXPECT_TRUE(top[i - 1].latency > top[i].latency ||
                    (top[i - 1].latency == top[i].latency &&
                     top[i - 1].id < top[i].id));

    std::uint64_t max_lat = 0;
    for (const auto &c : t->retained())
        max_lat = std::max(max_lat, c.latency);
    EXPECT_EQ(top.front().latency, max_lat);
}

TEST(CritPath, PerCoreRollupTelescopesToTheTotals)
{
    const sim::RunResult r =
        runTraced(ctrl::Mechanism::Intel, sim::EngineKind::Skip, "mcf");
    const CritPathTracer *t = r.obs->critpath();
    ASSERT_NE(t, nullptr);

    std::uint64_t count = 0, lat = 0, blame = 0;
    for (const auto &[tag, roll] : t->perCore()) {
        count += roll.count;
        lat += roll.latencySum;
        blame += blameSum(roll.blame);
        EXPECT_LE(roll.rowHits, roll.rowAccesses);
        EXPECT_LE(roll.rowAccesses, roll.count);
    }
    EXPECT_EQ(count, t->completedCount());
    EXPECT_EQ(lat, t->latencyTotal());
    EXPECT_EQ(blame, t->latencyTotal());
}

TEST(CritPath, JsonlStreamMatchesTheSchemaAndTheDigest)
{
    const std::string path = "critpath_test_trace.jsonl";
    sim::ExperimentConfig cfg;
    cfg.workload = "pchase";
    cfg.mechanism = ctrl::Mechanism::Burst;
    cfg.instructions = 2000;
    cfg.obs.accessTraceOut = path;
    const sim::RunResult r = sim::runExperiment(cfg);
    const CritPathTracer *t = r.obs->critpath();
    ASSERT_NE(t, nullptr); // --access-trace-out implies the pillar

    std::ifstream is(path);
    ASSERT_TRUE(is.is_open());
    std::string line;
    std::uint64_t lines = 0, rebuilt = 14695981039346656037ull;
    while (std::getline(is, line)) {
        lines += 1;
        const auto v = parseJson(line);
        ASSERT_TRUE(v.has_value()) << "line " << lines;
        for (const char *key : {"id", "core", "type", "channel", "rank",
                                "bank", "row", "arrival", "data_end",
                                "latency", "blocked_by", "blame"})
            ASSERT_NE(v->find(key), nullptr)
                << "line " << lines << " lacks " << key;
        // The blame vector telescopes to the latency, record by record.
        std::uint64_t sum = 0;
        for (const auto &[cause, n] : v->find("blame")->members)
            sum += std::uint64_t(n.number);
        ASSERT_EQ(sum, std::uint64_t(v->find("latency")->number))
            << "line " << lines;
        for (unsigned char b : line + '\n') {
            rebuilt ^= b;
            rebuilt *= 1099511628211ull;
        }
    }
    EXPECT_EQ(lines, t->completedCount());
    EXPECT_EQ(rebuilt, t->digest());
    std::remove(path.c_str());
}

TEST(CritPath, UnwritableTracePathFailsFastWithAResourceError)
{
    sim::ExperimentConfig cfg;
    cfg.workload = "pchase";
    cfg.mechanism = ctrl::Mechanism::Burst;
    cfg.instructions = 1000;
    cfg.obs.accessTraceOut = "no-such-dir/access.jsonl";
    try {
        sim::runExperiment(cfg);
        FAIL() << "expected a SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Resource);
    }
}

TEST(CritPath, PerCoreMetricsColumnsAppearOnlyWhenEnabled)
{
    sim::ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.instructions = 5000;
    cfg.obs.metricsInterval = 512;
    cfg.obs.perCoreMetrics = true;
    const sim::RunResult r = sim::runExperiment(cfg);
    ASSERT_NE(r.obs->sampler(), nullptr);

    std::ostringstream cos;
    r.obs->writeMetricsCsv(cos);
    const std::string header = cos.str().substr(0, cos.str().find('\n'));
    EXPECT_NE(header.find("rq_core0"), std::string::npos);
    EXPECT_NE(header.find("wq_core0"), std::string::npos);
    EXPECT_NE(header.find("rhr_core0"), std::string::npos);

    std::ostringstream jos;
    r.obs->writeMetricsJson(jos);
    const auto v = parseJson(jos.str());
    ASSERT_TRUE(v.has_value());
    const JsonValue *rows = v->find("rows");
    ASSERT_NE(rows, nullptr);
    ASSERT_GT(rows->size(), 0u);
    EXPECT_NE(rows->array[0].find("core_read_q"), nullptr);
    EXPECT_NE(rows->array[0].find("core_row_hit_rate"), nullptr);

    // Off by default: the historical column set is untouched.
    cfg.obs.perCoreMetrics = false;
    const sim::RunResult plain = sim::runExperiment(cfg);
    std::ostringstream pos;
    plain.obs->writeMetricsCsv(pos);
    const std::string ph = pos.str().substr(0, pos.str().find('\n'));
    EXPECT_EQ(ph.find("rq_core0"), std::string::npos);
    EXPECT_EQ(pos.str(), [&] {
        // And it is deterministic across repeated runs.
        const sim::RunResult again = sim::runExperiment(cfg);
        std::ostringstream qos;
        again.obs->writeMetricsCsv(qos);
        return qos.str();
    }());
}
