/**
 * @file
 * Protocol auditor tests: hand-built command streams exercise each rule
 * class — clean sequences pass, deliberately-violating ones are flagged
 * with the right rule id, and Fatal mode exits non-zero. The streams are
 * fed straight into onCommand(), so the auditor is tested without any
 * help (or interference) from the device engine it is meant to check.
 *
 * DDR2-800 numbers used throughout (Timing::ddr2_800): tCL=5 tRCD=5
 * tRP=5 tRAS=18 tRC=23 tWR=6 tWTR=3 tRTP=3 tRRD=3 tFAW=15 tWL=4,
 * 4 data cycles per burst.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "dram/config.hh"
#include "obs/protocol_audit.hh"

#include "sim_error_util.hh"

using namespace bsim;
using namespace bsim::dram;
using namespace bsim::obs;

namespace
{

/** One channel, one rank, eight banks: tFAW reachable without reuse. */
DramConfig
auditCfg()
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 1;
    cfg.banksPerRank = 8;
    return cfg;
}

Coords
bankCoords(std::uint32_t bank, std::uint32_t row = 0)
{
    Coords c;
    c.bank = bank;
    c.row = row;
    return c;
}

CommandRecord
act(Tick at, std::uint32_t bank, std::uint32_t row = 0)
{
    CommandRecord rec;
    rec.at = at;
    rec.type = CmdType::Activate;
    rec.coords = bankCoords(bank, row);
    return rec;
}

/** Read with the data burst where DDR2-800 actually places it. */
CommandRecord
rd(Tick at, std::uint32_t bank, std::uint32_t row = 0)
{
    CommandRecord rec;
    rec.at = at;
    rec.type = CmdType::Read;
    rec.coords = bankCoords(bank, row);
    rec.dataStart = at + 5; // tCL
    rec.dataEnd = rec.dataStart + 4;
    return rec;
}

CommandRecord
wr(Tick at, std::uint32_t bank, std::uint32_t row = 0)
{
    CommandRecord rec;
    rec.at = at;
    rec.type = CmdType::Write;
    rec.coords = bankCoords(bank, row);
    rec.dataStart = at + 4; // tWL
    rec.dataEnd = rec.dataStart + 4;
    return rec;
}

CommandRecord
pre(Tick at, std::uint32_t bank)
{
    CommandRecord rec;
    rec.at = at;
    rec.type = CmdType::Precharge;
    rec.coords = bankCoords(bank);
    return rec;
}

} // namespace

TEST(ProtocolAudit, CleanReadEpisodePasses)
{
    ProtocolAuditor a(AuditMode::Warn, auditCfg());
    a.onCommand(act(0, 0, 7));
    a.onCommand(rd(5, 0, 7));   // tRCD met exactly
    a.onCommand(pre(18, 0));    // tRAS met exactly; tRTP long past
    a.onCommand(act(23, 0, 9)); // tRP and tRC met exactly
    a.onCommand(rd(28, 0, 9));
    EXPECT_EQ(a.violationCount(), 0u);
    EXPECT_EQ(a.commandsAudited(), 5u);
}

TEST(ProtocolAudit, FifthActivateInsideTFawFlagged)
{
    ProtocolAuditor a(AuditMode::Warn, auditCfg());
    for (std::uint32_t b = 0; b < 4; ++b)
        a.onCommand(act(Tick(b) * 3, b)); // tRRD-spaced: 0, 3, 6, 9
    a.onCommand(act(12, 4));              // 12 < 0 + tFAW(15)
    ASSERT_EQ(a.violationCount(), 1u);
    EXPECT_EQ(a.violations()[0].rule, "t_faw");
}

TEST(ProtocolAudit, FifthActivateAtTFawBoundaryPasses)
{
    ProtocolAuditor a(AuditMode::Warn, auditCfg());
    for (std::uint32_t b = 0; b < 4; ++b)
        a.onCommand(act(Tick(b) * 3, b));
    a.onCommand(act(15, 4)); // exactly tFAW after the window opener
    EXPECT_EQ(a.violationCount(), 0u);
}

TEST(ProtocolAudit, ReadTooSoonAfterWriteFlagsTWtr)
{
    ProtocolAuditor a(AuditMode::Warn, auditCfg());
    a.onCommand(act(0, 0));
    a.onCommand(wr(5, 0)); // data ends at 13; reads legal from 16
    a.onCommand(rd(14, 0));
    ASSERT_EQ(a.violationCount(), 1u);
    EXPECT_EQ(a.violations()[0].rule, "t_wtr");
}

TEST(ProtocolAudit, ReadAfterWriteTurnaroundPasses)
{
    ProtocolAuditor a(AuditMode::Warn, auditCfg());
    a.onCommand(act(0, 0));
    a.onCommand(wr(5, 0));
    a.onCommand(rd(16, 0)); // exactly write data end (13) + tWTR (3)
    EXPECT_EQ(a.violationCount(), 0u);
}

TEST(ProtocolAudit, PrechargeBeforeTRasFlagged)
{
    ProtocolAuditor a(AuditMode::Warn, auditCfg());
    a.onCommand(act(0, 0));
    a.onCommand(pre(10, 0)); // 10 < tRAS(18)
    ASSERT_EQ(a.violationCount(), 1u);
    EXPECT_EQ(a.violations()[0].rule, "t_ras");
}

TEST(ProtocolAudit, PrechargeInsideWriteRecoveryFlagged)
{
    ProtocolAuditor a(AuditMode::Warn, auditCfg());
    a.onCommand(act(0, 0));
    a.onCommand(wr(5, 0));   // data ends at 13; precharge legal from 19
    a.onCommand(pre(18, 0)); // tRAS met, tWR not
    ASSERT_EQ(a.violationCount(), 1u);
    EXPECT_EQ(a.violations()[0].rule, "t_wr");
    ProtocolAuditor ok(AuditMode::Warn, auditCfg());
    ok.onCommand(act(0, 0));
    ok.onCommand(wr(5, 0));
    ok.onCommand(pre(19, 0));
    EXPECT_EQ(ok.violationCount(), 0u);
}

TEST(ProtocolAudit, ColumnAccessViolationsFlagged)
{
    ProtocolAuditor a(AuditMode::Warn, auditCfg());
    a.onCommand(rd(0, 0)); // closed bank
    ASSERT_GE(a.violationCount(), 1u);
    EXPECT_EQ(a.violations()[0].rule, "bank_state");

    ProtocolAuditor b(AuditMode::Warn, auditCfg());
    b.onCommand(act(0, 0));
    b.onCommand(rd(4, 0)); // 4 < tRCD(5)
    ASSERT_EQ(b.violationCount(), 1u);
    EXPECT_EQ(b.violations()[0].rule, "t_rcd");

    ProtocolAuditor c(AuditMode::Warn, auditCfg());
    c.onCommand(act(0, 0));
    CommandRecord bad = rd(5, 0);
    bad.dataStart += 1; // claims a burst later than tCL places it
    bad.dataEnd += 1;
    c.onCommand(bad);
    ASSERT_EQ(c.violationCount(), 1u);
    EXPECT_EQ(c.violations()[0].rule, "data_latency");
}

TEST(ProtocolAudit, CommandBusDoubleUseFlagged)
{
    ProtocolAuditor a(AuditMode::Warn, auditCfg());
    a.onCommand(act(5, 0));
    a.onCommand(act(5, 1)); // same channel slot, same tick (also tRRD)
    ASSERT_GE(a.violationCount(), 1u);
    EXPECT_EQ(a.violations()[0].rule, "cmd_bus");
}

TEST(ProtocolAudit, BurstSchedulingInvariants)
{
    // Non-first burst access must be a row hit unless disturbed.
    ProtocolAuditor a(AuditMode::Warn, auditCfg());
    const Coords c = bankCoords(0, 3);
    a.noteBurstRead(10, c, true, RowOutcome::Conflict);  // first: any
    a.noteBurstRead(20, c, false, RowOutcome::Hit);      // hit: fine
    EXPECT_EQ(a.violationCount(), 0u);
    a.noteBurstRead(30, c, false, RowOutcome::Conflict); // undisturbed
    ASSERT_EQ(a.violationCount(), 1u);
    EXPECT_EQ(a.violations()[0].rule, "burst_row_hit");

    // A (legal) precharge between the accesses excuses the miss.
    ProtocolAuditor b(AuditMode::Warn, auditCfg());
    b.onCommand(act(0, 0, 3));
    b.noteBurstRead(10, c, true, RowOutcome::Empty);
    b.onCommand(pre(18, 0)); // tRAS met
    b.noteBurstRead(50, c, false, RowOutcome::Conflict);
    EXPECT_EQ(b.violationCount(), 0u);

    // RP below threshold only; WP above threshold only.
    ProtocolAuditor g(AuditMode::Warn, auditCfg());
    g.notePreemption(0, 40, 52);
    g.notePiggyback(0, 60, 52);
    EXPECT_EQ(g.violationCount(), 0u);
    g.notePreemption(1, 52, 52);
    ASSERT_EQ(g.violationCount(), 1u);
    EXPECT_EQ(g.violations()[0].rule, "rp_gate");
    g.notePiggyback(2, 52, 52);
    ASSERT_EQ(g.violationCount(), 2u);
    EXPECT_EQ(g.violations()[1].rule, "wp_gate");
}

TEST(ProtocolAuditDeathTest, FatalModeThrowsProtocolError)
{
    ProtocolAuditor a(AuditMode::Fatal, auditCfg());
    a.onCommand(act(0, 0));
    EXPECT_SIM_ERROR(a.onCommand(pre(10, 0)),
                     bsim::ErrorCategory::Protocol, "t_ras");
}

TEST(ProtocolAudit, JsonSummaryRoundTrips)
{
    ProtocolAuditor a(AuditMode::Warn, auditCfg());
    a.onCommand(act(0, 0));
    a.onCommand(pre(10, 0));
    std::ostringstream os;
    a.writeJson(os);
    const auto v = parseJson(os.str());
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("mode")->string, "warn");
    EXPECT_EQ(v->find("commands_audited")->number, 2.0);
    EXPECT_EQ(v->find("violations")->number, 1.0);
    const JsonValue &entries = *v->find("entries");
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries.array[0].find("rule")->string, "t_ras");
}
