/**
 * @file
 * Chrome trace exporter tests: the emitted document must parse as JSON
 * and carry the track metadata, command events and counter samples the
 * format promises, with microsecond timestamps from the bus clock.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/clock.hh"
#include "common/json.hh"
#include "dram/memory_system.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "obs/observability.hh"
#include "sim/experiment.hh"

using namespace bsim;
using namespace bsim::obs;

namespace
{

dram::DramConfig
tinyConfig()
{
    dram::DramConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 1;
    cfg.banksPerRank = 2;
    cfg.rowsPerBank = 16;
    cfg.blocksPerRow = 32;
    cfg.timing.tREFI = 0;
    return cfg;
}

/** Count events in @p v (a parsed trace) with phase @p ph. */
std::size_t
countPhase(const JsonValue &v, const std::string &ph)
{
    std::size_t n = 0;
    for (const auto &e : v.find("traceEvents")->array)
        n += e.find("ph")->string == ph;
    return n;
}

} // namespace

TEST(ChromeTrace, UnitExportRoundTripsThroughParser)
{
    const dram::DramConfig cfg = tinyConfig();
    dram::MemorySystem mem(cfg);
    dram::CommandLog log;
    mem.attachLog(&log);

    const dram::Coords c{0, 0, 0, 3, 0};
    mem.issue({dram::CmdType::Activate, c, 7}, 0);
    const Tick rd_at = mem.timing().tRCD;
    mem.issue({dram::CmdType::Read, c, 7}, rd_at);

    std::ostringstream os;
    writeChromeTrace(os, log, cfg, nullptr);

    const auto v = parseJson(os.str());
    ASSERT_TRUE(v.has_value()) << os.str().substr(0, 200);
    EXPECT_EQ(v->find("displayTimeUnit")->string, "ms");
    EXPECT_DOUBLE_EQ(
        v->find("otherData")->find("commands_recorded")->number, 2.0);

    const JsonValue *events = v->find("traceEvents");
    ASSERT_NE(events, nullptr);
    // 1 process + 4 thread names; 2 scheduler instants; the activate
    // instant; the read's bank span + data-bus span.
    EXPECT_EQ(countPhase(*v, "M"), 5u);
    EXPECT_EQ(countPhase(*v, "i"), 3u);
    EXPECT_EQ(countPhase(*v, "X"), 2u);

    // The read's bank-lane event spans issue to end of data, in us of
    // the 400 MHz bus clock.
    const ClockDomain clk{400.0};
    bool found_read = false;
    for (const auto &e : events->array) {
        if (e.find("ph")->string != "X" || e.find("name")->string != "RD")
            continue;
        found_read = true;
        EXPECT_DOUBLE_EQ(e.find("ts")->number, clk.usOf(rd_at));
        // records() returns a fresh vector; copy the element so it
        // outlives the temporary.
        const auto rec = log.records()[1];
        EXPECT_DOUBLE_EQ(e.find("dur")->number,
                         clk.usOf(rec.dataEnd - rec.at));
        EXPECT_DOUBLE_EQ(e.find("args")->find("row")->number, 3.0);
    }
    EXPECT_TRUE(found_read);
}

TEST(ChromeTrace, FlowEventsChainAnAccessAcrossItsCommands)
{
    const dram::DramConfig cfg = tinyConfig();
    dram::MemorySystem mem(cfg);
    dram::CommandLog log;
    mem.attachLog(&log);

    // Access 7 needs an activate before its read: two commands, so the
    // exporter should tie them with a flow arrow ("s" then "f").
    const dram::Coords c{0, 0, 0, 3, 0};
    mem.issue({dram::CmdType::Activate, c, 7}, 0);
    const Tick rd_at = mem.timing().tRCD;
    mem.issue({dram::CmdType::Read, c, 7}, rd_at);
    // Access 8 row-hits the open row: one command, no arrow to draw.
    mem.issue({dram::CmdType::Read, {0, 0, 0, 3, 1}, 8}, rd_at + 16);

    std::ostringstream os;
    writeChromeTrace(os, log, cfg, nullptr);
    const auto v = parseJson(os.str());
    ASSERT_TRUE(v.has_value());

    EXPECT_EQ(countPhase(*v, "s"), 1u);
    EXPECT_EQ(countPhase(*v, "t"), 0u);
    EXPECT_EQ(countPhase(*v, "f"), 1u);
    for (const auto &e : v->find("traceEvents")->array) {
        const std::string &ph = e.find("ph")->string;
        if (ph != "s" && ph != "f")
            continue;
        EXPECT_EQ(e.find("name")->string, "access");
        EXPECT_DOUBLE_EQ(e.find("id")->number, 7.0);
        if (ph == "f") {
            EXPECT_EQ(e.find("bp")->string, "e");
        }
    }
}

TEST(ChromeTrace, SamplerRowsBecomeCounterTracks)
{
    const dram::DramConfig cfg = tinyConfig();
    dram::CommandLog log;

    MetricsSampler ms(100, {"b0", "b1"});
    MetricsSnapshot s;
    s.now = 99;
    s.readsOutstanding = 4;
    s.writesOutstanding = 2;
    ms.sample(s);

    std::ostringstream os;
    writeChromeTrace(os, log, cfg, &ms);
    const auto v = parseJson(os.str());
    ASSERT_TRUE(v.has_value());

    // Two counter events per row, on the controller process (pid ==
    // channel count).
    EXPECT_EQ(countPhase(*v, "C"), 2u);
    for (const auto &e : v->find("traceEvents")->array) {
        if (e.find("ph")->string != "C")
            continue;
        EXPECT_DOUBLE_EQ(e.find("pid")->number, double(cfg.channels));
        if (e.find("name")->string == "queue occupancy")
            EXPECT_DOUBLE_EQ(e.find("args")->find("reads")->number, 4.0);
    }
}

TEST(ChromeTrace, FullRunExportParsesAndCoversRun)
{
    sim::ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.instructions = 10'000;
    cfg.obs.commandTrace = true;
    cfg.obs.metricsInterval = 1024;

    const sim::RunResult r = sim::runExperiment(cfg);
    ASSERT_NE(r.obs, nullptr);
    ASSERT_NE(r.obs->commandLog(), nullptr);
    ASSERT_GT(r.obs->commandLog()->totalRecorded(), 0u);

    std::ostringstream os;
    r.obs->writeChromeTrace(os);
    const auto v = parseJson(os.str());
    ASSERT_TRUE(v.has_value());

    const JsonValue *events = v->find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(events->size(), r.obs->commandLog()->size());
    EXPECT_GT(countPhase(*v, "C"), 0u); // metrics counters present

    // Every event has the mandatory fields; timestamps are sane. The
    // final write's data burst may extend a few cycles past the last
    // controller tick (writes retire at column issue), hence the slack.
    const ClockDomain clk{400.0};
    const double run_us = clk.usOf(r.memCycles + 64);
    for (const auto &e : events->array) {
        ASSERT_NE(e.find("ph"), nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        if (e.find("ph")->string == "M")
            continue;
        ASSERT_NE(e.find("ts"), nullptr);
        EXPECT_GE(e.find("ts")->number, 0.0);
        EXPECT_LE(e.find("ts")->number, run_us);
    }
}

TEST(ChromeTrace, TraceCapacityBoundsRetention)
{
    sim::ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = ctrl::Mechanism::BkInOrder;
    cfg.instructions = 10'000;
    cfg.obs.commandTrace = true;
    cfg.obs.traceCapacity = 64;

    const sim::RunResult r = sim::runExperiment(cfg);
    ASSERT_NE(r.obs->commandLog(), nullptr);
    EXPECT_EQ(r.obs->commandLog()->size(), 64u);
    EXPECT_GT(r.obs->commandLog()->totalRecorded(), 64u);

    std::ostringstream os;
    r.obs->writeChromeTrace(os);
    const auto v = parseJson(os.str());
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(
        v->find("otherData")->find("commands_retained")->number, 64.0);
}
