/**
 * @file
 * System- and core-level edge cases: degenerate traces, narrow cores,
 * FSB latency accounting and response-path ordering.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "trace/trace_file.hh"
#include "trace/trace_gen.hh"

using namespace bsim;
using namespace bsim::sim;
using trace::TraceInstr;

namespace
{

trace::VectorTrace
makeTrace(std::vector<TraceInstr> v)
{
    return trace::VectorTrace(std::move(v));
}

TraceInstr
load(Addr a)
{
    return {TraceInstr::Op::Load, a, false, 0};
}

TraceInstr
store(Addr a)
{
    return {TraceInstr::Op::Store, a, false, 0};
}

TraceInstr
compute()
{
    return {TraceInstr::Op::Compute, 0, false, 0};
}

} // namespace

TEST(SystemEdge, EmptyTraceFinishesImmediately)
{
    auto t = makeTrace({});
    System sys(SystemConfig::baseline(), t);
    sys.run(1000);
    EXPECT_TRUE(sys.done());
    EXPECT_EQ(sys.core().retired(), 0u);
}

TEST(SystemEdge, SingleLoadRoundTripLatency)
{
    auto t = makeTrace({load(0x100000)});
    SystemConfig cfg = SystemConfig::baseline();
    System sys(cfg, t);
    sys.run(100000);
    ASSERT_TRUE(sys.done());
    // Lower bound: FSB there and back plus the idle-device row-empty
    // access, all in CPU cycles.
    const auto &tm = cfg.dram.timing;
    const Tick mem_min =
        2 * cfg.fsbLatency + tm.tRCD + tm.tCL + tm.dataCycles();
    EXPECT_GE(sys.execCpuCycles(), mem_min * cfg.cpuCyclesPerMemCycle);
}

TEST(SystemEdge, StoreOnlyTraceDrains)
{
    std::vector<TraceInstr> v;
    for (int i = 0; i < 64; ++i)
        v.push_back(store(Addr(0x200000 + 64 * i)));
    auto t = makeTrace(std::move(v));
    System sys(SystemConfig::baseline(), t);
    sys.run(3'000'000);
    ASSERT_TRUE(sys.done());
    EXPECT_EQ(sys.core().stores(), 64u);
    // Store misses write-allocate: fills happened.
    EXPECT_GE(sys.caches().memReads(), 1u);
}

TEST(SystemEdge, ComputeOnlyTraceTouchesNoMemory)
{
    std::vector<TraceInstr> v(500, compute());
    auto t = makeTrace(std::move(v));
    System sys(SystemConfig::baseline(), t);
    sys.run(100000);
    ASSERT_TRUE(sys.done());
    EXPECT_EQ(sys.controller().stats().reads, 0u);
    EXPECT_EQ(sys.controller().stats().writes, 0u);
}

TEST(SystemEdge, NarrowCoreIsSlower)
{
    auto mk = [] {
        std::vector<TraceInstr> v;
        for (int i = 0; i < 400; ++i) {
            v.push_back(compute());
            if (i % 8 == 0)
                v.push_back(load(Addr(0x300000 + 64 * i)));
        }
        return v;
    };
    SystemConfig wide = SystemConfig::baseline();
    SystemConfig narrow = SystemConfig::baseline();
    narrow.core.issueWidth = 1;
    auto t1 = makeTrace(mk());
    auto t2 = makeTrace(mk());
    System a(wide, t1), b(narrow, t2);
    a.run(3'000'000);
    b.run(3'000'000);
    ASSERT_TRUE(a.done());
    ASSERT_TRUE(b.done());
    EXPECT_LT(a.execCpuCycles(), b.execCpuCycles());
}

TEST(SystemEdge, FsbLatencyAddsRoundTripDelay)
{
    auto mk = [] {
        return std::vector<TraceInstr>{load(0x400000)};
    };
    SystemConfig fast = SystemConfig::baseline();
    fast.fsbLatency = 0;
    SystemConfig slow = SystemConfig::baseline();
    slow.fsbLatency = 10;
    auto t1 = makeTrace(mk());
    auto t2 = makeTrace(mk());
    System a(fast, t1), b(slow, t2);
    a.run(100000);
    b.run(100000);
    ASSERT_TRUE(a.done() && b.done());
    // 10 cycles each way, in CPU cycles.
    EXPECT_GE(b.execCpuCycles(),
              a.execCpuCycles() + 2 * 10 * 10 - 20 /*batch slack*/);
}

TEST(SystemEdge, TinyRobStillCompletes)
{
    SystemConfig cfg = SystemConfig::baseline();
    cfg.core.robSize = 2;
    cfg.core.lsqSize = 2;
    std::vector<TraceInstr> v;
    for (int i = 0; i < 50; ++i)
        v.push_back(load(Addr(0x500000 + 64 * i)));
    auto t = makeTrace(std::move(v));
    System sys(cfg, t);
    sys.run(5'000'000);
    ASSERT_TRUE(sys.done());
    EXPECT_EQ(sys.core().retired(), 50u);
}

TEST(SystemEdge, RepeatLoadsHitCacheAfterFirstMiss)
{
    std::vector<TraceInstr> v;
    for (int i = 0; i < 32; ++i)
        v.push_back(load(0x600000)); // same block every time
    auto t = makeTrace(std::move(v));
    System sys(SystemConfig::baseline(), t);
    sys.run(1'000'000);
    ASSERT_TRUE(sys.done());
    // One fill (plus possible MSHR merges), not 32.
    EXPECT_LE(sys.controller().stats().reads, 2u);
}
