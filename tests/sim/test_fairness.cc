/**
 * @file
 * CMP fairness layer: the slowdown / weighted-speedup / harmonic-
 * speedup arithmetic, the single-core identity (a core running alone
 * has slowdown exactly 1), the fairness sweep journal's crash-safe
 * resume (hexfloat round-trip, byte-identical CSV), and the config-key
 * canonicalisation — including the watermark-drain axis, which must
 * hash distinctly in both the fairness and the sweep journals while
 * leaving every pre-existing sweep key byte-stable.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/fairness.hh"
#include "sim/report.hh"
#include "sim/sweep.hh"

using namespace bsim;
using namespace bsim::sim;

namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::string
renderCsv(const std::vector<CmpConfig> &points, const FairnessReport &rep)
{
    std::ostringstream os;
    writeFairnessCsv(os, points, rep);
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------
// Pure arithmetic.

TEST(FairnessMath, AllEqualIpcIsTheIdentity)
{
    const std::vector<double> ipc = {0.5, 0.25, 1.0};
    const FairnessMetrics f = computeFairness(ipc, ipc);
    ASSERT_EQ(f.perCoreSlowdown.size(), 3u);
    for (double sd : f.perCoreSlowdown)
        EXPECT_DOUBLE_EQ(sd, 1.0);
    EXPECT_DOUBLE_EQ(f.maxSlowdown, 1.0);
    // Weighted speedup collapses to N exactly when every slowdown is 1.
    EXPECT_DOUBLE_EQ(f.weightedSpeedup, 3.0);
    EXPECT_DOUBLE_EQ(f.harmonicSpeedup, 1.0);
}

TEST(FairnessMath, SlowdownAndAggregatesFollowTheDefinitions)
{
    const std::vector<double> shared = {0.5, 0.5};
    const std::vector<double> alone = {1.0, 0.5};
    const FairnessMetrics f = computeFairness(shared, alone);
    ASSERT_EQ(f.perCoreSlowdown.size(), 2u);
    EXPECT_DOUBLE_EQ(f.perCoreSlowdown[0], 2.0);
    EXPECT_DOUBLE_EQ(f.perCoreSlowdown[1], 1.0);
    EXPECT_DOUBLE_EQ(f.maxSlowdown, 2.0);
    EXPECT_DOUBLE_EQ(f.weightedSpeedup, 0.5 + 1.0);
    EXPECT_DOUBLE_EQ(f.harmonicSpeedup, 2.0 / 3.0);
}

// ---------------------------------------------------------------------
// End-to-end identity: a single core shares the memory system with
// nobody, so its alone baseline is the shared run itself.

TEST(FairnessRun, SingleCoreSlowdownIsExactlyOne)
{
    CmpConfig cfg;
    cfg.workloads = {"swim"};
    cfg.mechanism = ctrl::Mechanism::Bliss;
    cfg.instructions = 4000;
    const CmpResult r = runCmpFairness(cfg);
    ASSERT_TRUE(r.haveFairness);
    ASSERT_EQ(r.fairness.perCoreSlowdown.size(), 1u);
    EXPECT_DOUBLE_EQ(r.fairness.perCoreSlowdown[0], 1.0);
    EXPECT_DOUBLE_EQ(r.fairness.weightedSpeedup, 1.0);
    EXPECT_DOUBLE_EQ(r.fairness.harmonicSpeedup, 1.0);
    EXPECT_DOUBLE_EQ(r.fairness.maxSlowdown, 1.0);
}

TEST(FairnessRun, SharedMixReportsPlausibleSlowdowns)
{
    CmpConfig cfg;
    cfg.workloads = {"swim", "mcf"};
    cfg.mechanism = ctrl::Mechanism::FrFcfs;
    cfg.instructions = 4000;
    const CmpResult r = runCmpFairness(cfg);
    ASSERT_TRUE(r.haveFairness);
    ASSERT_EQ(r.fairness.perCoreSlowdown.size(), 2u);
    for (double sd : r.fairness.perCoreSlowdown)
        EXPECT_GE(sd, 1.0); // sharing never speeds a core up here
    EXPECT_GE(r.fairness.maxSlowdown, 1.0);
    EXPECT_GT(r.fairness.weightedSpeedup, 0.0);
    EXPECT_LE(r.fairness.weightedSpeedup, 2.0);

    // The text report must carry the fairness block.
    std::ostringstream os;
    writeCmpResultText(os, r);
    EXPECT_NE(os.str().find("slowdown"), std::string::npos);
}

// ---------------------------------------------------------------------
// Config canonicalisation and key distinctness.

TEST(FairnessJournal, KeysSeparateEveryAxis)
{
    CmpConfig a;
    a.workloads = {"swim", "mcf"};
    a.mechanism = ctrl::Mechanism::Parbs;
    a.instructions = 4000;

    CmpConfig b = a;
    b.mechanism = ctrl::Mechanism::Atlas;
    CmpConfig c = a;
    c.watermarkDrain = true;
    CmpConfig d = a;
    d.workloads = {"mcf", "swim"};

    EXPECT_EQ(cmpConfigKey(a), cmpConfigKey(a));
    EXPECT_NE(cmpConfigKey(a), cmpConfigKey(b));
    EXPECT_NE(cmpConfigKey(a), cmpConfigKey(c));
    EXPECT_NE(cmpConfigKey(a), cmpConfigKey(d));
    EXPECT_NE(canonicalCmpConfig(a), canonicalCmpConfig(c));
}

TEST(SweepJournal, WatermarkAxisHashesDistinctlyButOldKeysAreStable)
{
    ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = ctrl::Mechanism::FrFcfs;
    cfg.instructions = 4000;

    const std::string plain = canonicalConfig(cfg);
    // Pre-existing journals must keep their keys: the token only
    // appears when the axis is actually enabled.
    EXPECT_EQ(plain.find("|wd"), std::string::npos);

    ExperimentConfig wd = cfg;
    wd.watermarkDrain = true;
    EXPECT_NE(canonicalConfig(wd).find("|wd"), std::string::npos);
    EXPECT_NE(configKey(cfg), configKey(wd));
}

// ---------------------------------------------------------------------
// Journal resume: the second sweep must restore every slot from the
// journal and render a byte-identical CSV (hexfloat round-trip).

TEST(FairnessJournal, ResumeRestoresSlotsAndCsvIsByteIdentical)
{
    const std::string path = tmpPath("fairness_resume.j3");
    std::remove(path.c_str());

    std::vector<CmpConfig> points(2);
    points[0].workloads = {"swim", "mcf"};
    points[0].mechanism = ctrl::Mechanism::Bliss;
    points[0].instructions = 3000;
    points[1] = points[0];
    points[1].mechanism = ctrl::Mechanism::FrFcfs;
    points[1].watermarkDrain = true;

    FairnessSweepOptions opt;
    opt.journal = path;
    opt.journalSync = false; // tmpfs test, durability irrelevant

    const FairnessReport first = runFairnessSweep(points, opt);
    ASSERT_EQ(first.slots.size(), 2u);
    for (const FairnessSlot &s : first.slots) {
        EXPECT_TRUE(s.ok);
        EXPECT_FALSE(s.fromJournal);
    }

    const auto records = loadFairnessJournal(path);
    EXPECT_EQ(records.size(), 2u);

    const FairnessReport second = runFairnessSweep(points, opt);
    ASSERT_EQ(second.slots.size(), 2u);
    for (const FairnessSlot &s : second.slots) {
        EXPECT_TRUE(s.ok);
        EXPECT_TRUE(s.fromJournal);
    }
    EXPECT_EQ(second.journaled(), 2u);
    EXPECT_EQ(renderCsv(points, first), renderCsv(points, second));

    std::remove(path.c_str());
}
