/**
 * @file
 * Experiment harness tests.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/experiment.hh"

using namespace bsim;
using namespace bsim::sim;

TEST(Experiment, ProducesPopulatedResult)
{
    ExperimentConfig cfg;
    cfg.workload = "gzip";
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.instructions = 20000;
    const RunResult r = runExperiment(cfg);
    EXPECT_EQ(r.workload, "gzip");
    EXPECT_EQ(r.mechanism, ctrl::Mechanism::BurstTH);
    EXPECT_EQ(r.instructions, 20000u);
    EXPECT_GT(r.execCpuCycles, 0u);
    EXPECT_GT(r.memCycles, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.ctrl.reads, 0u);
    EXPECT_GT(r.ctrl.writes, 0u);
    EXPECT_GT(r.dataBusUtil, 0.0);
    EXPECT_LT(r.dataBusUtil, 1.0);
    EXPECT_GT(r.bandwidthGBs, 0.0);
    EXPECT_TRUE(r.sched.count("bursts_formed"));
}

TEST(Experiment, DeterministicForSeed)
{
    ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.instructions = 15000;
    const RunResult a = runExperiment(cfg);
    const RunResult b = runExperiment(cfg);
    EXPECT_EQ(a.execCpuCycles, b.execCpuCycles);
    EXPECT_EQ(a.ctrl.reads, b.ctrl.reads);
}

TEST(Experiment, SeedChangesResult)
{
    ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.instructions = 15000;
    const RunResult a = runExperiment(cfg);
    cfg.seed += 1;
    const RunResult b = runExperiment(cfg);
    EXPECT_NE(a.execCpuCycles, b.execCpuCycles);
}

TEST(Experiment, MechanismSweepCoversAll)
{
    const auto results = runMechanismSweep(
        "gzip",
        {ctrl::Mechanism::BkInOrder, ctrl::Mechanism::BurstTH}, 15000);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].mechanism, ctrl::Mechanism::BkInOrder);
    EXPECT_EQ(results[1].mechanism, ctrl::Mechanism::BurstTH);
}

TEST(Experiment, PagePolicyOverride)
{
    ExperimentConfig cfg;
    cfg.workload = "gzip";
    cfg.instructions = 15000;
    cfg.pagePolicy = dram::PagePolicy::ClosePageAuto;
    const RunResult r = runExperiment(cfg);
    // Close-page-autoprecharge: no access can ever be a row hit or a
    // row conflict.
    EXPECT_DOUBLE_EQ(r.ctrl.rowHitRate(), 0.0);
    EXPECT_DOUBLE_EQ(r.ctrl.rowConflictRate(), 0.0);
    EXPECT_DOUBLE_EQ(r.ctrl.rowEmptyRate(), 1.0);
}

TEST(Experiment, AddressMapOverride)
{
    ExperimentConfig cfg;
    cfg.workload = "gzip";
    cfg.instructions = 15000;
    cfg.addressMap = dram::AddressMapKind::BitReversal;
    const RunResult r = runExperiment(cfg);
    EXPECT_GT(r.execCpuCycles, 0u);
}

TEST(Experiment, DefaultInstructionsEnvOverride)
{
    ::setenv("BURSTSIM_INSTR", "1234", 1);
    EXPECT_EQ(defaultInstructions(), 1234u);
    ::setenv("BURSTSIM_INSTR", "garbage", 1);
    EXPECT_EQ(defaultInstructions(), 150000u);
    ::unsetenv("BURSTSIM_INSTR");
    EXPECT_EQ(defaultInstructions(), 150000u);
}

TEST(Experiment, ThresholdOverrideChangesBehaviour)
{
    ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.instructions = 25000;
    cfg.threshold = 0;
    const RunResult wp = runExperiment(cfg);
    cfg.threshold = 64;
    const RunResult rp = runExperiment(cfg);
    // TH0 behaves like pure piggybacking: far lower write latency than
    // TH64 (pure preemption).
    EXPECT_LT(wp.ctrl.writeLatency.mean(), rp.ctrl.writeLatency.mean());
}

TEST(Experiment, DeviceGenerationOverride)
{
    ExperimentConfig cfg;
    cfg.workload = "gzip";
    cfg.instructions = 15000;
    cfg.device = DeviceGen::DDR_266;
    const RunResult old_dev = runExperiment(cfg);
    cfg.device = DeviceGen::DDR2_800;
    const RunResult new_dev = runExperiment(cfg);
    // The old device's bus runs at a third of the clock: with the same
    // workload it needs fewer memory cycles per CPU cycle but more CPU
    // cycles overall (less bandwidth).
    EXPECT_GT(old_dev.execCpuCycles, new_dev.execCpuCycles);
}

TEST(Experiment, OrganizationOverride)
{
    ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.instructions = 15000;
    cfg.channels = 1;
    cfg.ranksPerChannel = 1;
    cfg.banksPerRank = 2;
    const RunResult small = runExperiment(cfg);
    cfg.channels = 4;
    cfg.ranksPerChannel = 4;
    cfg.banksPerRank = 4;
    const RunResult big = runExperiment(cfg);
    EXPECT_GT(small.execCpuCycles, big.execCpuCycles)
        << "richer organization must not be slower";
}

TEST(Experiment, ExtendedMechanismSweepIncludesHistory)
{
    bool found = false;
    for (auto m : ctrl::kExtendedMechanisms)
        found = found || m == ctrl::Mechanism::AdaptiveHistory;
    EXPECT_TRUE(found);
    // The paper's Table 4 list stays at eight entries; the extended
    // list adds AdaptiveHistory plus the contention-aware zoo.
    EXPECT_EQ(std::size(ctrl::kAllMechanisms), 8u);
    EXPECT_EQ(std::size(ctrl::kExtendedMechanisms),
              9u + std::size(ctrl::kContentionMechanisms));
}
