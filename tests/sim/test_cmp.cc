/**
 * @file
 * Chip-multiprocessor system tests (paper Section 6 extension): private
 * cache stacks sharing one memory controller.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "trace/trace_gen.hh"

#include "sim_error_util.hh"

using namespace bsim;
using namespace bsim::sim;

namespace
{

trace::WorkloadProfile
profileAt(Addr base)
{
    trace::WorkloadProfile p;
    p.name = "cmp-test";
    p.memFraction = 0.3;
    p.writeFraction = 0.3;
    p.hotFraction = 0.5;
    p.seqFraction = 0.6;
    p.footprintBytes = 32ULL << 20;
    p.regionBase = base;
    return p;
}

} // namespace

TEST(Cmp, TwoCoresBothComplete)
{
    trace::SyntheticGenerator g0(profileAt(0), 3000, 1);
    trace::SyntheticGenerator g1(profileAt(1ULL << 30), 3000, 2);
    System sys(SystemConfig::baseline(), {&g0, &g1});
    ASSERT_EQ(sys.numCores(), 2u);
    sys.run(5'000'000);
    ASSERT_TRUE(sys.done());
    EXPECT_EQ(sys.core(0).retired(), 3000u);
    EXPECT_EQ(sys.core(1).retired(), 3000u);
    EXPECT_GT(sys.coreExecCpuCycles(0), 0u);
    EXPECT_GT(sys.coreExecCpuCycles(1), 0u);
    EXPECT_GE(sys.execCpuCycles(),
              std::max(sys.coreExecCpuCycles(0),
                       sys.coreExecCpuCycles(1)));
}

TEST(Cmp, CachesArePrivate)
{
    trace::SyntheticGenerator g0(profileAt(0), 2000, 1);
    trace::SyntheticGenerator g1(profileAt(1ULL << 30), 2000, 2);
    System sys(SystemConfig::baseline(), {&g0, &g1});
    sys.run(5'000'000);
    ASSERT_TRUE(sys.done());
    // Each core generated its own traffic through its own hierarchy.
    EXPECT_GT(sys.caches(0).memReads(), 0u);
    EXPECT_GT(sys.caches(1).memReads(), 0u);
}

TEST(Cmp, SingleCoreCtorEquivalentToOneTraceVector)
{
    trace::SyntheticGenerator g0(profileAt(0), 2500, 5);
    trace::SyntheticGenerator g1(profileAt(0), 2500, 5);
    System a(SystemConfig::baseline(), g0);
    System b(SystemConfig::baseline(), {&g1});
    a.run(5'000'000);
    b.run(5'000'000);
    ASSERT_TRUE(a.done());
    ASSERT_TRUE(b.done());
    EXPECT_EQ(a.execCpuCycles(), b.execCpuCycles());
    EXPECT_EQ(a.controller().stats().reads, b.controller().stats().reads);
}

TEST(Cmp, DeterministicAcrossRuns)
{
    auto run_once = [] {
        trace::SyntheticGenerator g0(profileAt(0), 2500, 7);
        trace::SyntheticGenerator g1(profileAt(1ULL << 30), 2500, 8);
        SystemConfig cfg = SystemConfig::baseline();
        cfg.ctrl.mechanism = ctrl::Mechanism::BurstTH;
        System sys(cfg, {&g0, &g1});
        sys.run(5'000'000);
        EXPECT_TRUE(sys.done());
        return sys.execCpuCycles();
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Cmp, SharedControllerSeesBothCores)
{
    trace::SyntheticGenerator g0(profileAt(0), 2000, 1);
    trace::SyntheticGenerator g1(profileAt(1ULL << 30), 2000, 2);
    System sys(SystemConfig::baseline(), {&g0, &g1});
    sys.run(5'000'000);
    ASSERT_TRUE(sys.done());
    const auto reads0 = sys.caches(0).memReads();
    const auto reads1 = sys.caches(1).memReads();
    // All fills of both cores were served by the one controller
    // (forwarded reads never reach DRAM but are counted as reads too).
    EXPECT_EQ(sys.controller().stats().reads, reads0 + reads1);
}

TEST(Cmp, ExperimentHarnessRuns)
{
    const auto r = runCmpExperiment({"gzip", "mcf"},
                                    ctrl::Mechanism::BurstTH, 10000);
    EXPECT_EQ(r.workloads.size(), 2u);
    EXPECT_EQ(r.perCoreCpuCycles.size(), 2u);
    EXPECT_GT(r.execCpuCycles, 0u);
    EXPECT_GT(r.ctrl.reads, 0u);
    EXPECT_GT(r.bandwidthGBs, 0.0);
}

TEST(Cmp, MoreCoresMoreTraffic)
{
    const auto one =
        runCmpExperiment({"gzip"}, ctrl::Mechanism::BurstTH, 10000);
    const auto two = runCmpExperiment({"gzip", "gzip"},
                                      ctrl::Mechanism::BurstTH, 10000);
    EXPECT_GT(two.ctrl.reads, one.ctrl.reads);
    EXPECT_GT(two.execCpuCycles, one.execCpuCycles / 2);
}

TEST(CmpDeath, NoTracesFatal)
{
    SystemConfig cfg = SystemConfig::baseline();
    EXPECT_SIM_ERROR(System(cfg, std::vector<trace::TraceSource *>{}),
                     bsim::ErrorCategory::Config, "at least one workload");
}
