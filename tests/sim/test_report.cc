/**
 * @file
 * Result-report rendering tests (JSON + text).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.hh"

using namespace bsim;
using namespace bsim::sim;

namespace
{

RunResult
sampleResult()
{
    ExperimentConfig cfg;
    cfg.workload = "gzip";
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.instructions = 12000;
    return runExperiment(cfg);
}

} // namespace

TEST(Report, JsonContainsCoreFields)
{
    const RunResult r = sampleResult();
    std::ostringstream os;
    writeResultJson(os, r);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"workload\": \"gzip\""), std::string::npos);
    EXPECT_NE(out.find("\"mechanism\": \"Burst_TH\""), std::string::npos);
    EXPECT_NE(out.find("\"exec_cpu_cycles\": " +
                       std::to_string(r.execCpuCycles)),
              std::string::npos);
    EXPECT_NE(out.find("\"controller\""), std::string::npos);
    EXPECT_NE(out.find("\"row_hit_rate\""), std::string::npos);
    EXPECT_NE(out.find("\"scheduler\""), std::string::npos);
    EXPECT_NE(out.find("\"bursts_formed\""), std::string::npos);
}

TEST(Report, JsonIsBalanced)
{
    const RunResult r = sampleResult();
    std::ostringstream os;
    writeResultJson(os, r);
    const std::string out = os.str();
    int depth = 0;
    bool in_string = false;
    char prev = 0;
    for (char c : out) {
        if (c == '"' && prev != '\\')
            in_string = !in_string;
        if (!in_string) {
            depth += c == '{' || c == '[';
            depth -= c == '}' || c == ']';
        }
        prev = c;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
}

TEST(Report, TextSummaryHasMetrics)
{
    const RunResult r = sampleResult();
    std::ostringstream os;
    writeResultText(os, r);
    const std::string out = os.str();
    EXPECT_NE(out.find("execution time"), std::string::npos);
    EXPECT_NE(out.find("row hit / conflict / empty"), std::string::npos);
    EXPECT_NE(out.find("effective bandwidth"), std::string::npos);
    EXPECT_NE(out.find("gzip"), std::string::npos);
}

TEST(Report, CmpJsonListsCores)
{
    const auto r = runCmpExperiment({"gzip", "mcf"},
                                    ctrl::Mechanism::BurstTH, 8000);
    std::ostringstream os;
    writeCmpResultJson(os, r);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"workloads\""), std::string::npos);
    EXPECT_NE(out.find("\"gzip\""), std::string::npos);
    EXPECT_NE(out.find("\"mcf\""), std::string::npos);
    EXPECT_NE(out.find("\"per_core_cpu_cycles\""), std::string::npos);
}
