/**
 * @file
 * Sweep progress telemetry tests: every emitted line is a parseable,
 * schema-valid JSON object; `done` is strictly increasing and the
 * clamped `eta_sec` never increases, at jobs=1 and jobs=8; retries
 * surface as point_retry events; selfprof rollups ride point_finish;
 * journaled reruns report zero pending points.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/sweep.hh"

using namespace bsim;
using namespace bsim::sim;

namespace
{

std::vector<ExperimentConfig>
tinyPoints(std::size_t n, bool selfprof = false)
{
    static const ctrl::Mechanism mechs[] = {
        ctrl::Mechanism::BkInOrder, ctrl::Mechanism::RowHit,
        ctrl::Mechanism::Intel, ctrl::Mechanism::Burst,
        ctrl::Mechanism::AdaptiveHistory,
    };
    std::vector<ExperimentConfig> points;
    for (std::size_t i = 0; i < n; ++i) {
        ExperimentConfig cfg;
        cfg.workload = "swim";
        cfg.instructions = 1200 + 100 * (i / 5);
        cfg.mechanism = mechs[i % 5];
        cfg.obs.selfProf = selfprof;
        points.push_back(cfg);
    }
    return points;
}

/** Parse the stream: one JSON object per line, no blank lines. */
std::vector<JsonValue>
parseLines(const std::string &text)
{
    std::vector<JsonValue> events;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        EXPECT_FALSE(line.empty()) << "blank line in progress JSONL";
        std::string err;
        auto v = parseJson(line, &err);
        EXPECT_TRUE(v) << err << " in: " << line;
        if (v) {
            EXPECT_TRUE(v->isObject());
            events.push_back(std::move(*v));
        }
    }
    return events;
}

std::string
eventName(const JsonValue &e)
{
    const JsonValue *n = e.find("event");
    return n && n->isString() ? n->string : "";
}

/** Full schema + monotonicity check over one sweep's stream. */
void
checkStream(const std::string &text, std::size_t npoints)
{
    const std::vector<JsonValue> ev = parseLines(text);
    ASSERT_GE(ev.size(), 2 + 2 * npoints);

    ASSERT_EQ(eventName(ev.front()), "sweep_start");
    for (const char *k : {"points", "pending", "journaled", "jobs"})
        ASSERT_NE(ev.front().find(k), nullptr) << k;
    EXPECT_EQ(ev.front().find("pending")->number, double(npoints));
    EXPECT_GE(ev.front().find("jobs")->number, 1.0);

    ASSERT_EQ(eventName(ev.back()), "sweep_end");
    for (const char *k :
         {"done", "total", "failures", "aborted", "cancelled",
          "elapsed_sec"})
        ASSERT_NE(ev.back().find(k), nullptr) << k;
    EXPECT_EQ(ev.back().find("done")->number, double(npoints));

    double last_done = 0.0;
    double last_eta = std::numeric_limits<double>::infinity();
    std::size_t starts = 0, finishes = 0;
    for (const JsonValue &e : ev) {
        const std::string name = eventName(e);
        if (name == "point_start" || name == "point_retry") {
            starts += name == "point_start" ? 1 : 0;
            for (const char *k : {"point", "label", "attempt"})
                ASSERT_NE(e.find(k), nullptr) << name << "." << k;
        } else if (name == "point_finish") {
            finishes += 1;
            for (const char *k :
                 {"point", "label", "status", "attempts", "wall_ms",
                  "done", "total", "points_per_sec", "eta_sec"})
                ASSERT_NE(e.find(k), nullptr) << k;
            EXPECT_EQ(e.find("total")->number, double(npoints));
            // One finish per point, serialized under the sink's mutex:
            // done counts up one at a time, in stream order.
            const double done = e.find("done")->number;
            EXPECT_EQ(done, last_done + 1.0);
            last_done = done;
            // The advertised ETA is clamped: a stable countdown, never
            // bouncing back up when a slow point lands.
            const double eta = e.find("eta_sec")->number;
            EXPECT_LE(eta, last_eta);
            EXPECT_GE(eta, 0.0);
            last_eta = eta;
        } else if (name == "heartbeat") {
            for (const char *k : {"done", "total", "points_per_sec",
                                  "eta_sec", "elapsed_sec"})
                ASSERT_NE(e.find(k), nullptr) << k;
            // Before the first finish there is no rate to extrapolate:
            // the ETA is -1 (unknown), never a bogus 0 that would pin
            // the clamped countdown.
            if (e.find("done")->number == 0.0)
                EXPECT_EQ(e.find("eta_sec")->number, -1.0);
            else
                EXPECT_GE(e.find("eta_sec")->number, 0.0);
        } else {
            EXPECT_TRUE(name == "sweep_start" || name == "sweep_end")
                << "unknown event: " << name;
        }
    }
    EXPECT_EQ(starts, npoints);
    EXPECT_EQ(finishes, npoints);
}

std::string
tempPath(const char *name)
{
    return testing::TempDir() + "/" + name;
}

} // namespace

TEST(SweepProgress, SchemaAndMonotonicityAtJobs1)
{
    const auto points = tinyPoints(6);
    std::ostringstream os;
    SweepOptions opt;
    opt.jobs = 1;
    opt.progressStream = &os;
    const SweepReport rep = runExperimentSweep(points, opt);
    EXPECT_EQ(rep.failures(), 0u);
    checkStream(os.str(), points.size());
}

TEST(SweepProgress, SchemaAndMonotonicityAtJobs8)
{
    const auto points = tinyPoints(10);
    std::ostringstream os;
    SweepOptions opt;
    opt.jobs = 8;
    opt.progressStream = &os;
    const SweepReport rep = runExperimentSweep(points, opt);
    EXPECT_EQ(rep.failures(), 0u);
    checkStream(os.str(), points.size());
}

TEST(SweepProgress, RetriesSurfaceAsPointRetryEvents)
{
    const auto points = tinyPoints(3);
    std::ostringstream os;
    SweepOptions opt;
    opt.jobs = 1;
    opt.maxAttempts = 3;
    opt.progressStream = &os;
    opt.fault.point = 1;
    opt.fault.times = 2;
    opt.fault.category = ErrorCategory::Resource; // transient: retried
    const SweepReport rep = runExperimentSweep(points, opt);
    EXPECT_EQ(rep.failures(), 0u);
    EXPECT_EQ(rep.slots[1].run.attempts, 3u);

    std::size_t retries = 0;
    bool saw_attempts_3 = false;
    for (const JsonValue &e : parseLines(os.str())) {
        if (eventName(e) == "point_retry") {
            retries += 1;
            EXPECT_EQ(e.find("point")->number, 1.0);
            EXPECT_GE(e.find("attempt")->number, 2.0);
        }
        if (eventName(e) == "point_finish" &&
            e.find("point")->number == 1.0) {
            EXPECT_EQ(e.find("status")->string, "ok");
            EXPECT_EQ(e.find("attempts")->number, 3.0);
            saw_attempts_3 = true;
        }
    }
    EXPECT_EQ(retries, 2u);
    EXPECT_TRUE(saw_attempts_3);
}

TEST(SweepProgress, SelfprofRollupsRidePointFinish)
{
    const auto points = tinyPoints(2, /*selfprof=*/true);
    std::ostringstream os;
    SweepOptions opt;
    opt.jobs = 2;
    opt.progressStream = &os;
    const SweepReport rep = runExperimentSweep(points, opt);
    EXPECT_EQ(rep.failures(), 0u);

    std::size_t rollups = 0;
    for (const JsonValue &e : parseLines(os.str())) {
        if (eventName(e) != "point_finish")
            continue;
        const JsonValue *sp = e.find("selfprof");
        ASSERT_NE(sp, nullptr);
        ASSERT_TRUE(sp->isObject());
        ASSERT_NE(sp->find("total_us"), nullptr);
        const JsonValue *phases = sp->find("phases");
        ASSERT_NE(phases, nullptr);
        EXPECT_TRUE(phases->isObject());
        EXPECT_GT(phases->size(), 0u);
        rollups += 1;
    }
    EXPECT_EQ(rollups, points.size());
}

TEST(SweepProgress, HeartbeatsNeverPinTheEta)
{
    // A sub-millisecond period all but guarantees heartbeats land
    // before the first point finishes; an early heartbeat must not cap
    // the later (real) ETAs at zero.
    const auto points = tinyPoints(5);
    std::ostringstream os;
    SweepOptions opt;
    opt.jobs = 1;
    opt.progressStream = &os;
    opt.heartbeatSec = 0.0005;
    const SweepReport rep = runExperimentSweep(points, opt);
    EXPECT_EQ(rep.failures(), 0u);
    checkStream(os.str(), points.size());

    bool nonzero_eta = false;
    for (const JsonValue &e : parseLines(os.str()))
        if (eventName(e) == "point_finish" &&
            e.find("done")->number < double(points.size()))
            nonzero_eta |= e.find("eta_sec")->number > 0.0;
    EXPECT_TRUE(nonzero_eta);
}

TEST(SweepProgress, JournaledRerunReportsZeroPending)
{
    const auto points = tinyPoints(3);
    const std::string journal = tempPath("progress_journal.txt");
    std::remove(journal.c_str());

    SweepOptions opt;
    opt.jobs = 1;
    opt.journal = journal;
    runExperimentSweep(points, opt); // populate the journal

    std::ostringstream os;
    opt.progressStream = &os;
    const SweepReport rep = runExperimentSweep(points, opt);
    EXPECT_EQ(rep.journaled(), points.size());

    const std::vector<JsonValue> ev = parseLines(os.str());
    ASSERT_GE(ev.size(), 2u);
    EXPECT_EQ(eventName(ev.front()), "sweep_start");
    EXPECT_EQ(ev.front().find("pending")->number, 0.0);
    EXPECT_EQ(ev.front().find("journaled")->number, double(points.size()));
    EXPECT_EQ(eventName(ev.back()), "sweep_end");
    EXPECT_EQ(ev.back().find("done")->number, 0.0);
    std::remove(journal.c_str());
}
