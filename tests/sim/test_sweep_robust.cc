/**
 * @file
 * Fault-contained, resumable sweep tests: guarded execution (retry,
 * abort threshold, cancellation), the non-default-constructible map
 * fix, journal round-tripping, and byte-identical resume at jobs=1 and
 * jobs=8.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/sweep.hh"
#include "sim/sweep_runner.hh"

#include "sim_error_util.hh"

using namespace bsim;
using namespace bsim::sim;

namespace
{

/** Move-only, no default constructor: the old map() couldn't hold it. */
struct Opaque
{
    explicit Opaque(int v) : value(v) {}
    Opaque(Opaque &&) = default;
    Opaque &operator=(Opaque &&) = default;
    int value;
};

/** A tiny sweep: one workload under three mechanisms. */
std::vector<ExperimentConfig>
tinyPoints()
{
    std::vector<ExperimentConfig> points;
    for (const ctrl::Mechanism m :
         {ctrl::Mechanism::BkInOrder, ctrl::Mechanism::RowHit,
          ctrl::Mechanism::BurstTH}) {
        ExperimentConfig cfg;
        cfg.workload = "swim";
        cfg.instructions = 1500;
        cfg.mechanism = m;
        points.push_back(cfg);
    }
    return points;
}

std::string
csvOf(const std::vector<ExperimentConfig> &points,
      const SweepReport &rep)
{
    std::ostringstream os;
    writeSweepCsv(os, points, rep);
    return os.str();
}

std::string
tempPath(const char *name)
{
    return testing::TempDir() + "/" + name;
}

} // namespace

TEST(SweepRunnerMap, HoldsNonDefaultConstructibleResults)
{
    SweepRunner runner(4);
    const std::vector<Opaque> out =
        runner.map<Opaque>(17, [](std::size_t i) {
            return Opaque(int(i) * 3);
        });
    ASSERT_EQ(out.size(), 17u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].value, int(i) * 3);
}

TEST(SweepRunnerGuarded, TransientFailuresRetryUntilSuccess)
{
    SweepRunner runner(1);
    std::vector<unsigned> calls(3, 0);
    FaultPolicy policy;
    policy.maxAttempts = 3;
    const auto rep = runner.guardedRun(
        3,
        [&](std::size_t i) {
            calls[i] += 1;
            if (i == 1 && calls[i] <= 2)
                throwSimError(ErrorCategory::Resource, "flaky");
        },
        policy);
    EXPECT_FALSE(rep.aborted);
    EXPECT_TRUE(rep.points[0].ok);
    EXPECT_EQ(rep.points[0].attempts, 1u);
    EXPECT_TRUE(rep.points[1].ok);
    EXPECT_EQ(rep.points[1].attempts, 3u);
    EXPECT_TRUE(rep.points[1].error.empty());
    EXPECT_TRUE(rep.points[2].ok);
}

TEST(SweepRunnerGuarded, PermanentFailuresNeverRetry)
{
    SweepRunner runner(1);
    unsigned calls = 0;
    FaultPolicy policy;
    policy.maxAttempts = 5;
    const auto rep = runner.guardedRun(
        1,
        [&](std::size_t) {
            calls += 1;
            throwSimError(ErrorCategory::Trace, "bad trace");
        },
        policy);
    EXPECT_EQ(calls, 1u);
    EXPECT_FALSE(rep.points[0].ok);
    EXPECT_EQ(rep.points[0].category, ErrorCategory::Trace);
    EXPECT_NE(rep.points[0].error.find("bad trace"), std::string::npos);
}

TEST(SweepRunnerGuarded, NonSimErrorIsContainedAsInternal)
{
    SweepRunner runner(1);
    const auto rep = runner.guardedRun(1, [](std::size_t) {
        throw std::runtime_error("boom");
    });
    EXPECT_FALSE(rep.points[0].ok);
    EXPECT_EQ(rep.points[0].category, ErrorCategory::Internal);
    EXPECT_NE(rep.points[0].error.find("boom"), std::string::npos);
}

TEST(SweepRunnerGuarded, MaxFailuresAbortsTail)
{
    SweepRunner runner(1); // deterministic claim order
    FaultPolicy policy;
    policy.maxFailures = 1;
    const auto rep = runner.guardedRun(
        5,
        [&](std::size_t i) {
            if (i <= 1)
                throwSimError(ErrorCategory::Config, "bad point");
        },
        policy);
    EXPECT_TRUE(rep.aborted);
    EXPECT_FALSE(rep.points[0].ok);
    EXPECT_FALSE(rep.points[1].ok);
    // Everything after the second failure was never claimed.
    EXPECT_TRUE(rep.points[3].skipped());
    EXPECT_TRUE(rep.points[4].skipped());
}

TEST(SweepRunnerGuarded, CancelTokenDrainsAndSkips)
{
    SweepRunner runner(1);
    std::atomic<bool> cancel{false};
    FaultPolicy policy;
    policy.cancel = &cancel;
    const auto rep = runner.guardedRun(
        4,
        [&](std::size_t i) {
            if (i == 1)
                cancel.store(true); // "SIGINT" mid-sweep
        },
        policy);
    EXPECT_TRUE(rep.cancelled);
    EXPECT_TRUE(rep.points[0].ok);
    EXPECT_TRUE(rep.points[1].ok); // in-flight point drains normally
    EXPECT_TRUE(rep.points[2].skipped());
    EXPECT_TRUE(rep.points[3].skipped());
}

TEST(ConfigKey, DistinguishesPointsAndIsStable)
{
    const auto points = tinyPoints();
    EXPECT_NE(configKey(points[0]), configKey(points[1]));
    EXPECT_NE(configKey(points[1]), configKey(points[2]));
    EXPECT_EQ(configKey(points[0]), configKey(points[0]));

    ExperimentConfig tweaked = points[0];
    tweaked.seed += 1;
    EXPECT_NE(configKey(tweaked), configKey(points[0]));

    // The key covers everything that decides a point's fate, including
    // the engine, the fault policy (a watchdog can abort a point that
    // would otherwise succeed) and the scheduler-factory identity — a
    // resume under a different policy must re-run, never silently reuse
    // the prior journal record.
    ExperimentConfig guarded = points[0];
    guarded.watchdogCycles = 1;
    guarded.deadlineSec = 99.0;
    EXPECT_NE(configKey(guarded), configKey(points[0]));

    ExperimentConfig step = points[0];
    step.engine = EngineKind::Step;
    EXPECT_NE(configKey(step), configKey(points[0]));

    ExperimentConfig variant = points[0];
    variant.timingVariant = TimingVariant::ZeroWindows;
    EXPECT_NE(configKey(variant), configKey(points[0]));

    ExperimentConfig faulty = points[0];
    faulty.schedulerFactory = [](ctrl::Mechanism,
                                 const ctrl::SchedulerContext &) {
        return std::unique_ptr<ctrl::Scheduler>();
    };
    faulty.schedulerFactoryId = "faulty:freeze@100";
    EXPECT_NE(configKey(faulty), configKey(points[0]));

    // Distinct factory identities hash apart even when the std::function
    // itself is opaque.
    ExperimentConfig faulty2 = faulty;
    faulty2.schedulerFactoryId = "faulty:freeze@200";
    EXPECT_NE(configKey(faulty2), configKey(faulty));
}

TEST(ConfigKey, CanonicalEchoSanitizesAndRoundTrips)
{
    const auto points = tinyPoints();
    const std::string canon = canonicalConfig(points[0]);
    // The echo is embedded in a quoted journal field: it must never
    // contain a quote or newline, whatever the workload string held.
    ExperimentConfig hostile = points[0];
    hostile.workload = "we\"ird\nname";
    const std::string sane = canonicalConfig(hostile);
    EXPECT_EQ(sane.find('"'), std::string::npos);
    EXPECT_EQ(sane.find('\n'), std::string::npos);
    EXPECT_NE(canon, sane);
    EXPECT_NE(canon.find("swim"), std::string::npos);
}

TEST(SweepJournal, TornFinalLineIsSkipped)
{
    const std::string path = tempPath("bsim_torn.journal");
    {
        std::ofstream os(path);
        os << "# comment\n"
           << "P 00000000000000aa attempts=1 exec=123 rdlat=0x1p+1 "
              "wrlat=0x1p+2 rowhit=0x1p-1 bw=0x1.8p+1\n"
           << "P 00000000000000bb attempts=2 exec=4"; // torn mid-write
    }
    const auto j = loadSweepJournal(path);
    ASSERT_EQ(j.size(), 1u);
    const JournalRecord &rec = j.at(0xaa);
    EXPECT_EQ(rec.attempts, 1u);
    EXPECT_EQ(rec.summary.execCpuCycles, 123u);
    EXPECT_DOUBLE_EQ(rec.summary.readLatMean, 2.0);
    EXPECT_DOUBLE_EQ(rec.summary.writeLatMean, 4.0);
    EXPECT_DOUBLE_EQ(rec.summary.rowHitRate, 0.5);
    EXPECT_DOUBLE_EQ(rec.summary.bandwidthGBs, 3.0);
    std::remove(path.c_str());
}

TEST(SweepJournal, MissingFileMeansNothingToResume)
{
    EXPECT_TRUE(loadSweepJournal(tempPath("bsim_nope.journal")).empty());
}

TEST(SweepRobust, InjectedFaultIsContainedAndReported)
{
    const auto points = tinyPoints();
    SweepOptions opt;
    opt.jobs = 2;
    opt.fault.point = 1;
    opt.fault.times = 99; // permanent within this sweep
    opt.fault.category = ErrorCategory::Trace;
    const SweepReport rep = runExperimentSweep(points, opt);
    EXPECT_FALSE(rep.aborted);
    EXPECT_TRUE(rep.slots[0].run.ok);
    EXPECT_FALSE(rep.slots[1].run.ok);
    EXPECT_EQ(rep.slots[1].run.category, ErrorCategory::Trace);
    EXPECT_EQ(rep.slots[1].run.attempts, 1u); // trace is permanent
    EXPECT_TRUE(rep.slots[2].run.ok);

    const std::string csv = csvOf(points, rep);
    EXPECT_NE(csv.find("swim,RowHit,failed,1,trace"), std::string::npos)
        << csv;
}

TEST(SweepRobust, TransientInjectionRetriesThenSucceeds)
{
    const auto points = tinyPoints();
    SweepOptions opt;
    opt.jobs = 1;
    opt.maxAttempts = 3;
    opt.fault.point = 2;
    opt.fault.times = 2; // first two attempts fail, third succeeds
    opt.fault.category = ErrorCategory::Resource;
    const SweepReport rep = runExperimentSweep(points, opt);
    EXPECT_TRUE(rep.slots[2].run.ok);
    EXPECT_EQ(rep.slots[2].run.attempts, 3u);

    // The retried point's numbers equal an untroubled run's.
    const SweepReport clean = runExperimentSweep(points, {});
    EXPECT_EQ(rep.slots[2].summary.execCpuCycles,
              clean.slots[2].summary.execCpuCycles);
}

TEST(SweepRobust, ResumeReproducesByteIdenticalReports)
{
    const auto points = tinyPoints();
    const SweepReport fresh = runExperimentSweep(points, {});
    const std::string fresh_csv = csvOf(points, fresh);

    for (const unsigned resume_jobs : {1u, 8u}) {
        const std::string path = tempPath("bsim_resume.journal");
        std::remove(path.c_str());

        // First pass: one point fails permanently, the others journal.
        SweepOptions first;
        first.jobs = 1;
        first.journal = path;
        first.fault.point = 1;
        first.fault.times = 99;
        first.fault.category = ErrorCategory::Config;
        const SweepReport partial = runExperimentSweep(points, first);
        EXPECT_FALSE(partial.slots[1].run.ok);
        EXPECT_EQ(partial.journaled(), 0u);

        // Second pass: no fault; the journaled points are restored and
        // only the failed slot actually runs.
        SweepOptions second;
        second.jobs = resume_jobs;
        second.journal = path;
        const SweepReport resumed = runExperimentSweep(points, second);
        EXPECT_EQ(resumed.journaled(), 2u);
        EXPECT_TRUE(resumed.slots[0].fromJournal);
        EXPECT_FALSE(resumed.slots[1].fromJournal);
        EXPECT_TRUE(resumed.slots[2].fromJournal);

        // The deliverable guarantee: CSV (and thus the table rendered
        // from the same slots) is byte-identical to the fresh sweep.
        EXPECT_EQ(csvOf(points, resumed), fresh_csv)
            << "jobs=" << resume_jobs;

        // Third pass: everything restores; nothing reruns.
        const SweepReport all = runExperimentSweep(points, second);
        EXPECT_EQ(all.journaled(), 3u);
        EXPECT_EQ(csvOf(points, all), fresh_csv);
        std::remove(path.c_str());
    }
}

TEST(SweepRobust, UnwritableJournalFailsUpFront)
{
    const auto points = tinyPoints();
    SweepOptions opt;
    opt.journal = "/nonexistent-dir/sweep.journal";
    EXPECT_SIM_ERROR(runExperimentSweep(points, opt),
                     ErrorCategory::Resource, "sweep journal");
}

TEST(SweepRobust, TableMarksFailedAndSkippedSlots)
{
    const auto points = tinyPoints();
    SweepOptions opt;
    opt.jobs = 1;
    opt.maxFailures = 0; // abort at the first failure
    opt.fault.point = 1;
    opt.fault.times = 99;
    opt.fault.category = ErrorCategory::Internal;
    const SweepReport rep = runExperimentSweep(points, opt);
    EXPECT_TRUE(rep.aborted);

    std::ostringstream os;
    writeSweepTable(os, points, rep);
    const std::string table = os.str();
    EXPECT_NE(table.find("failed(internal)"), std::string::npos)
        << table;
    EXPECT_NE(table.find("skipped"), std::string::npos) << table;
}
