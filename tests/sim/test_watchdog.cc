/**
 * @file
 * Forward-progress watchdog and wall-clock deadline tests, driven by the
 * FaultyScheduler fault-injection wrapper: a scheduler that freezes
 * after N column accesses produces the canonical hang signature (busy
 * controller, no retirements), which the watchdog must convert into a
 * diagnosable SimError instead of an infinite loop.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "ctrl/schedulers/factory.hh"
#include "ctrl/schedulers/faulty.hh"
#include "sim/experiment.hh"

#include "sim_error_util.hh"

using namespace bsim;
using namespace bsim::sim;

namespace
{

/** Small, fast experiment: enough traffic to freeze mid-stream. */
ExperimentConfig
smallConfig(EngineKind engine)
{
    ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.instructions = 4000;
    cfg.engine = engine;
    cfg.watchdogCycles = 2000; // >> any legitimate completion gap here
    return cfg;
}

/** Factory wrapping the real policy in a freeze-after-N decorator. */
auto
freezeFactory(std::uint64_t after)
{
    return [after](ctrl::Mechanism m, const ctrl::SchedulerContext &ctx) {
        return std::make_unique<ctrl::FaultyScheduler>(
            ctx, ctrl::makeScheduler(m, ctx), after);
    };
}

} // namespace

TEST(Watchdog, FrozenSchedulerTripsWatchdogStepEngine)
{
    ExperimentConfig cfg = smallConfig(EngineKind::Step);
    cfg.schedulerFactory = freezeFactory(5);
    EXPECT_SIM_ERROR(runExperiment(cfg), ErrorCategory::Internal,
                     "forward-progress watchdog");
}

TEST(Watchdog, FrozenSchedulerTripsWatchdogSkipEngine)
{
    // The frozen wrapper pins nextEventTick to `now`, so the
    // cycle-skipping engine cannot leap over the hang window: the
    // watchdog must fire there too.
    ExperimentConfig cfg = smallConfig(EngineKind::Skip);
    cfg.schedulerFactory = freezeFactory(5);
    EXPECT_SIM_ERROR(runExperiment(cfg), ErrorCategory::Internal,
                     "forward-progress watchdog");
}

TEST(Watchdog, ErrorCarriesQueueSnapshot)
{
    ExperimentConfig cfg = smallConfig(EngineKind::Skip);
    cfg.schedulerFactory = freezeFactory(5);
    try {
        runExperiment(cfg);
        FAIL() << "no throw";
    } catch (const SimError &e) {
        // The context must be the controller snapshot: global pool
        // occupancy plus per-channel queue depths.
        EXPECT_NE(e.context().find("pool"), std::string::npos)
            << e.context();
        EXPECT_NE(e.context().find("ch0:"), std::string::npos)
            << e.context();
        EXPECT_NE(e.context().find("queued reads"), std::string::npos)
            << e.context();
    }
}

TEST(Watchdog, FrozenContentionFamiliesTripItUnderSkip)
{
    // Fault injection per contention family: the FaultyScheduler
    // forwards nextEventTick/globalSignature until its fault triggers,
    // then pins the horizon to `now` — so the skip engine cannot leap
    // the hang for any family, with or without the watermark drain.
    for (ctrl::Mechanism m : ctrl::kContentionMechanisms) {
        for (bool wd : {false, true}) {
            SCOPED_TRACE(std::string(ctrl::mechanismName(m)) +
                         (wd ? " wd" : ""));
            ExperimentConfig cfg = smallConfig(EngineKind::Skip);
            cfg.mechanism = m;
            cfg.watermarkDrain = wd;
            cfg.schedulerFactory = freezeFactory(5);
            EXPECT_SIM_ERROR(runExperiment(cfg), ErrorCategory::Internal,
                             "forward-progress watchdog");
        }
    }
}

TEST(Watchdog, ZeroDisablesIt)
{
    // With the watchdog off, the frozen run must instead hit the
    // drain cap and report that as an internal error — not hang.
    ExperimentConfig cfg = smallConfig(EngineKind::Skip);
    cfg.instructions = 400; // keep the capped run short
    cfg.watchdogCycles = 0;
    cfg.schedulerFactory = freezeFactory(5);
    EXPECT_SIM_ERROR(runExperiment(cfg), ErrorCategory::Internal,
                     "did not drain");
}

TEST(Watchdog, QuietRunsAreUnaffected)
{
    // A healthy run with the default watchdog must complete and match
    // the unwrapped result exactly (the wrapper is a pure pass-through
    // until its fault triggers).
    ExperimentConfig plain = smallConfig(EngineKind::Skip);
    ExperimentConfig wrapped = plain;
    wrapped.schedulerFactory =
        freezeFactory(std::uint64_t(-1)); // never freezes
    const RunResult a = runExperiment(plain);
    const RunResult b = runExperiment(wrapped);
    EXPECT_EQ(a.execCpuCycles, b.execCpuCycles);
    EXPECT_EQ(a.ctrl.reads, b.ctrl.reads);
    EXPECT_EQ(a.ctrl.writes, b.ctrl.writes);
    EXPECT_EQ(a.ctrl.rowHits, b.ctrl.rowHits);
}

TEST(Watchdog, DeadlineFiresAsResourceError)
{
    ExperimentConfig cfg = smallConfig(EngineKind::Step);
    cfg.instructions = 200000; // long enough to exceed a ~0 deadline
    cfg.deadlineSec = 1e-9;
    EXPECT_SIM_ERROR(runExperiment(cfg), ErrorCategory::Resource,
                     "deadline");
}
