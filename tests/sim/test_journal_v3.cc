/**
 * @file
 * Journal v3 hardening tests: CRC framing written by real sweeps,
 * record-level corruption detection (CRC flip, length mismatch, torn
 * tail), longest-valid-prefix repair, legacy v2 acceptance, and the
 * shardSlots partition the campaign layer is built on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/crc32.hh"
#include "sim/sweep.hh"

#include "sim_error_util.hh"

using namespace bsim;
using namespace bsim::sim;

namespace
{

std::vector<ExperimentConfig>
tinyPoints()
{
    std::vector<ExperimentConfig> points;
    for (const ctrl::Mechanism m :
         {ctrl::Mechanism::BkInOrder, ctrl::Mechanism::RowHit,
          ctrl::Mechanism::BurstTH}) {
        ExperimentConfig cfg;
        cfg.workload = "swim";
        cfg.instructions = 1500;
        cfg.mechanism = m;
        points.push_back(cfg);
    }
    return points;
}

std::string
tempPath(const char *name)
{
    return testing::TempDir() + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

void
spit(const std::string &path, const std::string &content)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << content;
}

/** A valid framed record line for @p payload. */
std::string
frame(const std::string &payload)
{
    char head[32];
    std::snprintf(head, sizeof(head), "J3 %zu %08x ", payload.size(),
                  crc32(payload));
    return head + payload + "\n";
}

const std::string kPayloadA =
    "P 00000000000000aa attempts=1 exec=123 rdlat=0x1p+1 wrlat=0x1p+2 "
    "rowhit=0x1p-1 bw=0x1.8p+1";
const std::string kPayloadB =
    "P 00000000000000bb attempts=2 exec=456 rdlat=0x1p+0 wrlat=0x1p+0 "
    "rowhit=0x1p-2 bw=0x1p+0";
const std::string kPayloadC =
    "P 00000000000000cc attempts=1 exec=789 rdlat=0x1p+0 wrlat=0x1p+0 "
    "rowhit=0x1p-2 bw=0x1p+0";

} // namespace

TEST(JournalV3, RealSweepWritesFramedRecordsThatScanClean)
{
    const auto points = tinyPoints();
    const std::string path = tempPath("j3_real.journal");
    std::remove(path.c_str());

    SweepOptions opt;
    opt.journal = path;
    opt.journalSync = false; // tmpfs test, durability irrelevant
    const SweepReport rep = runExperimentSweep(points, opt);
    ASSERT_EQ(rep.failures(), 0u);

    const JournalScan scan = scanSweepJournal(path);
    EXPECT_TRUE(scan.clean());
    EXPECT_EQ(scan.v3Records, 3u);
    EXPECT_EQ(scan.legacyRecords, 0u);
    EXPECT_EQ(scan.records.size(), 3u);
    // Every record is framed and the whole file is the valid prefix.
    const std::string content = slurp(path);
    EXPECT_EQ(scan.validPrefixBytes, content.size());
    EXPECT_EQ(content.rfind("J3 ", 0), 0u);

    // And the echo survives: records carry their canonical config.
    for (const ExperimentConfig &p : points) {
        const auto it = scan.records.find(configKey(p));
        ASSERT_NE(it, scan.records.end());
        EXPECT_EQ(it->second.configEcho, canonicalConfig(p));
    }
    std::remove(path.c_str());
}

TEST(JournalV3, CrcFlipMidFileIsDetectedAndRecordDropped)
{
    const std::string path = tempPath("j3_crcflip.journal");
    spit(path, frame(kPayloadA) + frame(kPayloadB) + frame(kPayloadC));

    // Corrupt one byte of record B's payload without changing its
    // length: stored CRC no longer matches.
    std::string content = slurp(path);
    const std::size_t at = content.find("exec=456");
    ASSERT_NE(at, std::string::npos);
    content[at + 5] = '9';
    spit(path, content);

    const JournalScan scan = scanSweepJournal(path);
    ASSERT_EQ(scan.issues.size(), 1u);
    EXPECT_EQ(scan.issues[0].kind, JournalIssue::Kind::CrcMismatch);
    EXPECT_EQ(scan.issues[0].line, 2u);
    // The damaged record is dropped; its neighbours survive.
    EXPECT_EQ(scan.records.count(0xaa), 1u);
    EXPECT_EQ(scan.records.count(0xbb), 0u);
    EXPECT_EQ(scan.records.count(0xcc), 1u);
    // The valid prefix ends before the damaged record.
    EXPECT_EQ(scan.validPrefixBytes, frame(kPayloadA).size());

    // loadSweepJournal (the resume path) sees the same records.
    const auto loaded = loadSweepJournal(path);
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.count(0xbb), 0u);
    std::remove(path.c_str());
}

TEST(JournalV3, CrcFlipOnFinalRecordIsStillCorruptionNotTornTail)
{
    const std::string path = tempPath("j3_crctail.journal");
    std::string second = frame(kPayloadB);
    const std::size_t at = second.find("exec=456");
    second[at + 5] = '9';
    spit(path, frame(kPayloadA) + second);

    const JournalScan scan = scanSweepJournal(path);
    ASSERT_EQ(scan.issues.size(), 1u);
    // A CRC mismatch is never excused as crash debris, even at EOF:
    // a torn single write can shorten the tail but not rewrite bytes.
    EXPECT_EQ(scan.issues[0].kind, JournalIssue::Kind::CrcMismatch);
    std::remove(path.c_str());
}

TEST(JournalV3, TornTailVariantsAreSkippedAndRepaired)
{
    // Three torn shapes a crash mid-append can leave behind.
    const std::string torn[] = {
        "J3 12",                      // frame header torn
        frame(kPayloadB).substr(0, 30), // payload torn short
        frame(kPayloadB).substr(0, frame(kPayloadB).size() - 1),
        // ^ complete record missing only its newline: still rejected,
        // or the next O_APPEND write would concatenate onto this line
    };
    for (const std::string &tail : torn) {
        const std::string path = tempPath("j3_torn.journal");
        spit(path, frame(kPayloadA) + tail);

        const JournalScan scan = scanSweepJournal(path);
        ASSERT_EQ(scan.issues.size(), 1u) << tail;
        EXPECT_EQ(scan.issues[0].kind, JournalIssue::Kind::TornTail)
            << tail;
        EXPECT_EQ(scan.records.size(), 1u);
        EXPECT_EQ(scan.validPrefixBytes, frame(kPayloadA).size());

        // Repair truncates to the valid prefix; the rescan is clean.
        EXPECT_TRUE(repairSweepJournal(path));
        EXPECT_EQ(slurp(path), frame(kPayloadA));
        const JournalScan healed = scanSweepJournal(path);
        EXPECT_TRUE(healed.clean());
        EXPECT_EQ(healed.records.size(), 1u);
        // Idempotent: a clean file is left alone.
        EXPECT_FALSE(repairSweepJournal(path));
        std::remove(path.c_str());
    }
}

TEST(JournalV3, LengthMismatchIsItsOwnIssueKind)
{
    const std::string path = tempPath("j3_len.journal");
    // Frame claims 5 bytes, carries more; a clean record follows, so
    // this is mid-file damage, not a torn tail.
    spit(path, "J3 5 00000000 hello-much-longer\n" + frame(kPayloadA));
    const JournalScan scan = scanSweepJournal(path);
    ASSERT_EQ(scan.issues.size(), 1u);
    EXPECT_EQ(scan.issues[0].kind, JournalIssue::Kind::LengthMismatch);
    EXPECT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.validPrefixBytes, 0u);
    std::remove(path.c_str());
}

TEST(JournalV3, LegacyBareV2RecordsStillResume)
{
    const std::string path = tempPath("j3_legacy.journal");
    spit(path, "# old journal\n" + kPayloadA + "\n" + frame(kPayloadB));
    const JournalScan scan = scanSweepJournal(path);
    EXPECT_TRUE(scan.clean());
    EXPECT_EQ(scan.legacyRecords, 1u);
    EXPECT_EQ(scan.v3Records, 1u);
    EXPECT_EQ(scan.records.count(0xaa), 1u);
    EXPECT_EQ(scan.records.count(0xbb), 1u);
    EXPECT_EQ(scan.records.at(0xaa).summary.execCpuCycles, 123u);
    std::remove(path.c_str());
}

TEST(JournalV3, MissingFileIsCleanAndEmpty)
{
    const JournalScan scan =
        scanSweepJournal(tempPath("j3_nope.journal"));
    EXPECT_TRUE(scan.missing);
    EXPECT_TRUE(scan.clean());
    EXPECT_TRUE(scan.records.empty());
    EXPECT_FALSE(repairSweepJournal(tempPath("j3_nope.journal")));
}

TEST(JournalV3, ResumeAcrossTornTailReproducesByteIdenticalCsv)
{
    const auto points = tinyPoints();
    const std::string path = tempPath("j3_resume.journal");
    std::remove(path.c_str());

    const SweepReport fresh = runExperimentSweep(points, {});
    std::ostringstream fresh_csv;
    writeSweepCsv(fresh_csv, points, fresh);

    SweepOptions opt;
    opt.journal = path;
    opt.journalSync = false;
    runExperimentSweep(points, opt);

    // Crash debris after the last good record: resume must shrug it off
    // and reproduce the fresh CSV exactly.
    {
        std::ofstream os(path, std::ios::app | std::ios::binary);
        os << "J3 999 0000";
    }
    const SweepReport resumed = runExperimentSweep(points, opt);
    EXPECT_EQ(resumed.journaled(), 3u);
    std::ostringstream resumed_csv;
    writeSweepCsv(resumed_csv, points, resumed);
    EXPECT_EQ(resumed_csv.str(), fresh_csv.str());
    std::remove(path.c_str());
}

TEST(ShardSlots, PartitionIsContiguousBalancedAndComplete)
{
    for (const std::size_t count : {1u, 2u, 7u, 24u, 100u}) {
        for (unsigned shards = 1; shards <= count && shards <= 9;
             ++shards) {
            std::vector<std::size_t> all;
            std::size_t minSize = count, maxSize = 0;
            for (unsigned s = 0; s < shards; ++s) {
                const auto slots = shardSlots(count, shards, s);
                minSize = std::min(minSize, slots.size());
                maxSize = std::max(maxSize, slots.size());
                all.insert(all.end(), slots.begin(), slots.end());
            }
            // Concatenation in shard order is exactly 0..count-1.
            ASSERT_EQ(all.size(), count);
            for (std::size_t i = 0; i < count; ++i)
                ASSERT_EQ(all[i], i) << count << "/" << shards;
            // Balanced: sizes differ by at most one.
            EXPECT_LE(maxSize - minSize, 1u) << count << "/" << shards;
        }
    }
}

TEST(ShardSlots, RejectsBadGeometry)
{
    EXPECT_SIM_ERROR(shardSlots(10, 0, 0), ErrorCategory::Config,
                     "shard count");
    EXPECT_SIM_ERROR(shardSlots(10, 3, 3), ErrorCategory::Config,
                     "out of range");
}

TEST(Crc32, KnownVectorsAndSensitivity)
{
    // The standard check vector for CRC-32/ISO-HDLC.
    EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
    EXPECT_EQ(crc32(std::string("")), 0x00000000u);
    EXPECT_NE(crc32(std::string("journal")), crc32(std::string("journak")));
}
