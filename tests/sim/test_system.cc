/**
 * @file
 * Full-system tests: wiring, clock domains, completion and determinism.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "trace/trace_gen.hh"

using namespace bsim;
using namespace bsim::sim;

namespace
{

trace::WorkloadProfile
lightProfile()
{
    trace::WorkloadProfile p;
    p.name = "light";
    p.memFraction = 0.3;
    p.writeFraction = 0.3;
    p.hotFraction = 0.5;
    p.seqFraction = 0.6;
    p.footprintBytes = 32ULL << 20;
    return p;
}

} // namespace

TEST(System, RunsWorkloadToCompletion)
{
    trace::SyntheticGenerator gen(lightProfile(), 5000, 1);
    System sys(SystemConfig::baseline(), gen);
    sys.run(2'000'000);
    EXPECT_TRUE(sys.done());
    EXPECT_EQ(sys.core().retired(), 5000u);
    EXPECT_GT(sys.execCpuCycles(), 0u);
    EXPECT_LE(sys.execCpuCycles(), sys.cpuCycles());
}

TEST(System, ClockDomainRatioHolds)
{
    trace::SyntheticGenerator gen(lightProfile(), 2000, 1);
    System sys(SystemConfig::baseline(), gen);
    sys.run(1'000'000);
    ASSERT_TRUE(sys.done());
    // 10 CPU cycles per memory cycle (4 GHz / 400 MHz).
    EXPECT_NEAR(double(sys.cpuCycles()) / double(sys.memCycles()), 10.0,
                0.1);
}

TEST(System, DeterministicAcrossRuns)
{
    trace::SyntheticGenerator g1(lightProfile(), 3000, 7);
    trace::SyntheticGenerator g2(lightProfile(), 3000, 7);
    System a(SystemConfig::baseline(), g1);
    System b(SystemConfig::baseline(), g2);
    a.run(2'000'000);
    b.run(2'000'000);
    EXPECT_EQ(a.execCpuCycles(), b.execCpuCycles());
    EXPECT_EQ(a.controller().stats().reads, b.controller().stats().reads);
    EXPECT_EQ(a.controller().stats().writes,
              b.controller().stats().writes);
    EXPECT_DOUBLE_EQ(a.controller().stats().readLatency.mean(),
                     b.controller().stats().readLatency.mean());
}

TEST(System, MechanismChangesTimingNotTraffic)
{
    // Different schedulers must serve exactly the same miss stream (the
    // CPU side is timing-dependent, so allow small variation in counts
    // but require identical retired instructions).
    trace::SyntheticGenerator g1(lightProfile(), 3000, 7);
    trace::SyntheticGenerator g2(lightProfile(), 3000, 7);
    SystemConfig c1 = SystemConfig::baseline();
    SystemConfig c2 = SystemConfig::baseline();
    c2.ctrl.mechanism = ctrl::Mechanism::BurstTH;
    System a(c1, g1);
    System b(c2, g2);
    a.run(2'000'000);
    b.run(2'000'000);
    EXPECT_EQ(a.core().retired(), b.core().retired());
}

TEST(System, MemPortRespectsQueueCap)
{
    trace::SyntheticGenerator gen(lightProfile(), 1000, 1);
    SystemConfig cfg = SystemConfig::baseline();
    cfg.memQueueCap = 2;
    System sys(cfg, gen);
    EXPECT_TRUE(sys.canSend(2));
    sys.sendRead(0);
    EXPECT_TRUE(sys.canSend(1));
    EXPECT_FALSE(sys.canSend(2));
    sys.sendWrite(64);
    EXPECT_FALSE(sys.canSend(1));
}

TEST(System, BaselineMatchesTable3)
{
    const SystemConfig cfg = SystemConfig::baseline();
    EXPECT_EQ(cfg.core.issueWidth, 8u);
    EXPECT_EQ(cfg.core.robSize, 196u);
    EXPECT_EQ(cfg.core.lsqSize, 32u);
    EXPECT_EQ(cfg.caches.l1d.sizeBytes, 128u * 1024);
    EXPECT_EQ(cfg.caches.l1d.assoc, 2u);
    EXPECT_EQ(cfg.caches.l2.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(cfg.caches.l2.assoc, 16u);
    EXPECT_EQ(cfg.dram.channels, 2u);
    EXPECT_EQ(cfg.dram.ranksPerChannel, 4u);
    EXPECT_EQ(cfg.dram.banksPerRank, 4u);
    EXPECT_EQ(cfg.dram.totalBanks(), 32u);
    EXPECT_EQ(cfg.ctrl.poolCap, 256u);
    EXPECT_EQ(cfg.ctrl.writeCap, 64u);
    EXPECT_EQ(cfg.dram.pagePolicy, dram::PagePolicy::OpenPage);
    EXPECT_EQ(cfg.dram.addressMap, dram::AddressMapKind::PageInterleave);
    EXPECT_EQ(cfg.cpuCyclesPerMemCycle, 10u);
}

TEST(System, RunCapStopsEarly)
{
    trace::SyntheticGenerator gen(lightProfile(), 100000, 1);
    System sys(SystemConfig::baseline(), gen);
    const Tick ran = sys.run(100);
    EXPECT_EQ(ran, 100u);
    EXPECT_FALSE(sys.done());
}
