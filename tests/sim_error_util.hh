/**
 * @file
 * Shared assertion for structured-error tests: EXPECT_SIM_ERROR checks
 * that a statement throws SimError with the expected category and a
 * diagnostic containing the given substring. Replaces the EXPECT_EXIT
 * patterns from the era when library code called fatal() directly.
 */

#ifndef BURSTSIM_TESTS_SIM_ERROR_UTIL_HH
#define BURSTSIM_TESTS_SIM_ERROR_UTIL_HH

#include <string>

#include <gtest/gtest.h>

#include "common/error.hh"

#define EXPECT_SIM_ERROR(stmt, cat, substr)                              \
    do {                                                                 \
        bool caught_sim_error_ = false;                                  \
        try {                                                            \
            stmt;                                                        \
        } catch (const bsim::SimError &e_) {                             \
            caught_sim_error_ = true;                                    \
            EXPECT_EQ(e_.category(), cat) << "category mismatch for "    \
                                          << e_.describe();              \
            EXPECT_NE(e_.describe().find(substr), std::string::npos)     \
                << "expected substring '" << substr                      \
                << "' in: " << e_.describe();                            \
        }                                                                \
        EXPECT_TRUE(caught_sim_error_)                                   \
            << #stmt " did not throw SimError";                          \
    } while (0)

#endif // BURSTSIM_TESTS_SIM_ERROR_UTIL_HH
