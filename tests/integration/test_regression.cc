/**
 * @file
 * Golden-value regression tests (gem5-style): exact cycle counts for a
 * few fixed (workload, mechanism, seed) points. The simulator is fully
 * deterministic, so any change to these numbers means the model's
 * behaviour changed — which may be intentional, but must be noticed.
 * When a change is deliberate, re-record the constants (the failure
 * message prints the new values).
 *
 * Traffic counts (reads/writes presented to the controller) must be
 * identical across mechanisms for a given workload: schedulers reorder,
 * they do not create or destroy accesses.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

using namespace bsim;
using namespace bsim::sim;

namespace
{

struct Golden
{
    const char *workload;
    ctrl::Mechanism mechanism;
    std::uint64_t execCpuCycles;
    std::uint64_t reads;
    std::uint64_t writes;
};

// Recorded at 25,000 instructions, seed 20070212 (the defaults).
// Re-recorded when the refresh-drain gate landed: barring new
// activates to a refresh-pending rank shifts command timing around
// every refresh window (traffic counts are unchanged).
const Golden kGolden[] = {
    {"swim", ctrl::Mechanism::BkInOrder, 379940ull, 6644ull, 2764ull},
    {"swim", ctrl::Mechanism::RowHit, 304530ull, 6644ull, 2764ull},
    {"swim", ctrl::Mechanism::BurstTH, 258940ull, 6644ull, 2764ull},
    {"mcf", ctrl::Mechanism::BkInOrder, 82890ull, 1558ull, 29ull},
    {"mcf", ctrl::Mechanism::RowHit, 82180ull, 1558ull, 29ull},
    {"mcf", ctrl::Mechanism::BurstTH, 79160ull, 1558ull, 29ull},
    {"gzip", ctrl::Mechanism::BkInOrder, 83470ull, 1172ull, 189ull},
    {"gzip", ctrl::Mechanism::RowHit, 67510ull, 1172ull, 189ull},
    {"gzip", ctrl::Mechanism::BurstTH, 60390ull, 1172ull, 189ull},
};

} // namespace

class GoldenValues : public testing::TestWithParam<Golden>
{
};

TEST_P(GoldenValues, ExactReproduction)
{
    const Golden &g = GetParam();
    ExperimentConfig cfg;
    cfg.workload = g.workload;
    cfg.mechanism = g.mechanism;
    cfg.instructions = 25000;
    const RunResult r = runExperiment(cfg);
    EXPECT_EQ(r.execCpuCycles, g.execCpuCycles)
        << "behavioural change: re-record if intentional (new value "
        << r.execCpuCycles << ")";
    EXPECT_EQ(r.ctrl.reads, g.reads) << "new value " << r.ctrl.reads;
    EXPECT_EQ(r.ctrl.writes, g.writes) << "new value " << r.ctrl.writes;
}

INSTANTIATE_TEST_SUITE_P(
    Fixed, GoldenValues, testing::ValuesIn(kGolden),
    [](const auto &info) {
        return std::string(info.param.workload) + "_" +
               ctrl::mechanismName(info.param.mechanism);
    });

TEST(GoldenValues, TrafficIsNearlyMechanismInvariant)
{
    // Schedulers reorder accesses, they do not create or destroy work.
    // Counts can differ marginally across mechanisms (MSHR merging is
    // timing dependent), but only marginally.
    std::uint64_t reads = 0, writes = 0;
    bool first = true;
    for (auto m : ctrl::kAllMechanisms) {
        ExperimentConfig cfg;
        cfg.workload = "gzip";
        cfg.mechanism = m;
        cfg.instructions = 25000;
        const RunResult r = runExperiment(cfg);
        if (first) {
            reads = r.ctrl.reads;
            writes = r.ctrl.writes;
            first = false;
        } else {
            EXPECT_NEAR(double(r.ctrl.reads), double(reads),
                        0.02 * double(reads))
                << ctrl::mechanismName(m);
            EXPECT_NEAR(double(r.ctrl.writes), double(writes),
                        0.02 * double(writes))
                << ctrl::mechanismName(m);
        }
    }
}
