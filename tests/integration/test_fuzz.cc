/**
 * @file
 * Fuzz / stress tests. The timing engine panics on any protocol
 * violation (double-booked bus, premature command, refresh over open
 * rows), so simply surviving a long randomized run is a meaningful
 * whole-system invariant check.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "ctrl/controller.hh"
#include "dram/memory_system.hh"
#include "sim/experiment.hh"

using namespace bsim;

namespace
{

dram::DramConfig
fuzzDram(std::uint64_t seed)
{
    // Random (power-of-two) geometry per seed.
    Rng rng(seed);
    dram::DramConfig cfg;
    cfg.channels = 1u << rng.below(2);        // 1..2
    cfg.ranksPerChannel = 1u << rng.below(3); // 1..4
    cfg.banksPerRank = 1u << (1 + rng.below(2)); // 2..4
    cfg.rowsPerBank = 64;
    cfg.blocksPerRow = 32;
    cfg.timing = dram::Timing::ddr2_800();
    if (rng.chance(0.3))
        cfg.timing = dram::Timing::ddr_266();
    if (rng.chance(0.3))
        cfg.pagePolicy = dram::PagePolicy::ClosePageAuto;
    return cfg;
}

} // namespace

class FuzzGeometry : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzGeometry, RandomTrafficNeverViolatesProtocolAndDrains)
{
    const std::uint64_t seed = GetParam();
    dram::MemorySystem mem(fuzzDram(seed));
    Rng rng(seed * 977 + 3);

    ctrl::ControllerConfig ccfg;
    ccfg.mechanism =
        ctrl::kAllMechanisms[rng.below(std::size(ctrl::kAllMechanisms))];
    ccfg.poolCap = 24;
    ccfg.writeCap = 6;
    ccfg.threshold = rng.below(7);
    ccfg.dynamicThreshold = rng.chance(0.3);
    ccfg.sortBurstsBySize = rng.chance(0.3);
    ccfg.criticalFirst = rng.chance(0.3);
    ccfg.rankAware = rng.chance(0.8);
    ctrl::MemoryController controller(mem, ccfg);

    std::uint64_t responses = 0, reads = 0;
    controller.setReadCallback(
        [&](const ctrl::MemAccess &, Tick) { responses += 1; });

    const std::uint64_t capacity_blocks = 512;
    Tick now = 0;
    std::uint64_t submitted = 0;
    while (submitted < 2000 || controller.busy()) {
        ASSERT_LT(now, 2'000'000u)
            << "no forward progress (seed " << seed << ", mechanism "
            << ctrl::mechanismName(ccfg.mechanism) << ")";
        while (submitted < 2000 && controller.canAccept() &&
               rng.chance(0.6)) {
            const bool w = rng.chance(0.4);
            if (!w)
                reads += 1;
            controller.submit(w ? AccessType::Write : AccessType::Read,
                              rng.below(capacity_blocks) * 64, now,
                              nullptr, 0, rng.chance(0.2));
            submitted += 1;
        }
        controller.tick(now++);
    }
    EXPECT_EQ(responses, reads);
    EXPECT_EQ(controller.stats().reads + controller.stats().writes,
              submitted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzGeometry,
                         testing::Range<std::uint64_t>(1, 25));

TEST(FuzzSystem, AllMechanismsAllWorkloadsSmallRuns)
{
    // End-to-end stress: 4 workloads x 8 mechanisms at tiny scale; a
    // hang or panic anywhere in the stack fails the test.
    for (const char *w : {"swim", "mcf", "gzip", "lucas"}) {
        for (ctrl::Mechanism m : ctrl::kAllMechanisms) {
            sim::ExperimentConfig cfg;
            cfg.workload = w;
            cfg.mechanism = m;
            cfg.instructions = 8000;
            const auto r = sim::runExperiment(cfg);
            EXPECT_GT(r.execCpuCycles, 0u)
                << w << "/" << ctrl::mechanismName(m);
        }
    }
}

TEST(FuzzSystem, ExtremeThresholdsAreSafe)
{
    for (std::size_t th : {std::size_t(0), std::size_t(1),
                           std::size_t(63), std::size_t(64)}) {
        sim::ExperimentConfig cfg;
        cfg.workload = "swim";
        cfg.mechanism = ctrl::Mechanism::BurstTH;
        cfg.threshold = th;
        cfg.instructions = 8000;
        const auto r = sim::runExperiment(cfg);
        EXPECT_GT(r.execCpuCycles, 0u) << "threshold " << th;
    }
}

TEST(FuzzSystem, RefreshHeavyDeviceStillDrains)
{
    // A pathologically frequent refresh (tREFI barely above tRFC) must
    // not deadlock any mechanism.
    for (ctrl::Mechanism m :
         {ctrl::Mechanism::BkInOrder, ctrl::Mechanism::BurstTH}) {
        dram::DramConfig dcfg;
        dcfg.channels = 1;
        dcfg.ranksPerChannel = 2;
        dcfg.banksPerRank = 2;
        dcfg.rowsPerBank = 64;
        dcfg.blocksPerRow = 32;
        dcfg.timing.tREFI = dcfg.timing.tRFC + 40;
        dram::MemorySystem mem(dcfg);
        ctrl::ControllerConfig ccfg;
        ccfg.mechanism = m;
        ccfg.poolCap = 16;
        ccfg.writeCap = 4;
        ctrl::MemoryController controller(mem, ccfg);

        Rng rng(4);
        Tick now = 0;
        std::uint64_t submitted = 0;
        while (submitted < 400 || controller.busy()) {
            ASSERT_LT(now, 1'000'000u) << ctrl::mechanismName(m);
            if (submitted < 400 && controller.canAccept() &&
                rng.chance(0.4)) {
                controller.submit(rng.chance(0.3) ? AccessType::Write
                                                  : AccessType::Read,
                                  rng.below(256) * 64, now);
                submitted += 1;
            }
            controller.tick(now++);
        }
        EXPECT_GT(controller.stats().refreshes, 10u);
    }
}
