/**
 * @file
 * Cycle-accounting integration tests: for every scheduler family, each
 * channel's attributed causes must telescope to exactly the run's memory
 * cycles (no cycle double-counted or lost), the protocol auditor must
 * find zero violations in the engine's command stream, and two
 * identical runs must export byte-identical attribution JSON.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/observability.hh"
#include "sim/experiment.hh"

using namespace bsim;
using namespace bsim::sim;

namespace
{

constexpr ctrl::Mechanism kFamilies[] = {
    ctrl::Mechanism::BkInOrder,       ctrl::Mechanism::RowHit,
    ctrl::Mechanism::Intel,           ctrl::Mechanism::BurstTH,
    ctrl::Mechanism::AdaptiveHistory,
};

ExperimentConfig
accountedRun(ctrl::Mechanism m)
{
    ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = m;
    cfg.instructions = 20000;
    cfg.obs.stallAttribution = true;
    cfg.obs.audit = obs::AuditMode::Warn;
    return cfg;
}

} // namespace

TEST(CycleAccounting, AttributionTelescopesForEveryScheduler)
{
    for (ctrl::Mechanism m : kFamilies) {
        const RunResult r = runExperiment(accountedRun(m));
        ASSERT_TRUE(r.obs) << ctrl::mechanismName(m);
        const obs::StallAttribution *sa = r.obs->stalls();
        ASSERT_NE(sa, nullptr) << ctrl::mechanismName(m);

        for (std::uint32_t ch = 0; ch < sa->numChannels(); ++ch) {
            std::uint64_t sum = 0;
            for (std::size_t i = 0; i < dram::kNumStallCauses; ++i)
                sum += sa->count(ch, dram::StallCause(i));
            EXPECT_EQ(sum, sa->cycles(ch))
                << ctrl::mechanismName(m) << " channel " << ch;
            EXPECT_EQ(sa->cycles(ch), r.memCycles)
                << ctrl::mechanismName(m) << " channel " << ch;
        }
        // The cycle categories must actually be used: a run that
        // transfers data has DataTransfer and PrepIssue cycles.
        EXPECT_GT(sa->count(0, dram::StallCause::DataTransfer), 0u)
            << ctrl::mechanismName(m);
        EXPECT_GT(sa->count(0, dram::StallCause::PrepIssue), 0u)
            << ctrl::mechanismName(m);
    }
}

TEST(CycleAccounting, EngineCommandStreamPassesAudit)
{
    for (ctrl::Mechanism m : kFamilies) {
        const RunResult r = runExperiment(accountedRun(m));
        ASSERT_TRUE(r.obs);
        const obs::ProtocolAuditor *a = r.obs->auditor();
        ASSERT_NE(a, nullptr) << ctrl::mechanismName(m);
        EXPECT_GT(a->commandsAudited(), 0u) << ctrl::mechanismName(m);
        EXPECT_EQ(a->violationCount(), 0u) << ctrl::mechanismName(m);
    }
}

TEST(CycleAccounting, SameSeedRunsExportIdenticalJson)
{
    auto stallJson = [] {
        const RunResult r =
            runExperiment(accountedRun(ctrl::Mechanism::BurstTH));
        std::ostringstream os;
        r.obs->writeStallJson(os);
        return os.str();
    };
    const std::string first = stallJson();
    const std::string second = stallJson();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}
