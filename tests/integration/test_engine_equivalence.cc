/**
 * @file
 * Engine equivalence: the event-driven cycle-skipping engine must be
 * byte-identical to the tick-accurate step engine — not approximately
 * equal, identical. Every statistic the simulator can emit (result
 * JSON, stall-attribution JSON, metrics time series) is compared as a
 * rendered string across the five scheduler classes, single-core and
 * CMP, DDR2-800 and DDR-266, with and without observability pillars.
 *
 * This suite is what licenses every horizon shortcut in the skip
 * engine: a scheduler nextEventTick() that overshoots, a stale horizon
 * memo, or a non-idempotent idle-span replay shows up here as a
 * one-byte diff.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "obs/observability.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/sweep_runner.hh"

using namespace bsim;
using namespace bsim::sim;

namespace
{

constexpr std::uint64_t kInstr = 20'000;

/** The five scheduler classes (one per scheduler implementation). */
const ctrl::Mechanism kSchedulerClasses[] = {
    ctrl::Mechanism::BkInOrder,       ctrl::Mechanism::RowHit,
    ctrl::Mechanism::Intel,           ctrl::Mechanism::Burst,
    ctrl::Mechanism::AdaptiveHistory,
};

std::string
resultJson(const RunResult &r)
{
    std::ostringstream os;
    writeResultJson(os, r);
    return os.str();
}

RunResult
runWith(ExperimentConfig cfg, EngineKind engine)
{
    cfg.engine = engine;
    return runExperiment(cfg);
}

} // namespace

class EveryPair
    : public testing::TestWithParam<std::tuple<ctrl::Mechanism, std::string>>
{
};

TEST_P(EveryPair, ResultJsonByteIdentical)
{
    ExperimentConfig cfg;
    cfg.mechanism = std::get<0>(GetParam());
    cfg.workload = std::get<1>(GetParam());
    cfg.instructions = kInstr;

    const RunResult step = runWith(cfg, EngineKind::Step);
    const RunResult skip = runWith(cfg, EngineKind::Skip);

    EXPECT_EQ(step.execCpuCycles, skip.execCpuCycles);
    EXPECT_EQ(step.memCycles, skip.memCycles);
    EXPECT_EQ(resultJson(step), resultJson(skip));
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EveryPair,
    testing::Combine(testing::ValuesIn(kSchedulerClasses),
                     testing::Values(std::string("mcf"),
                                     std::string("swim"),
                                     std::string("gzip"))),
    [](const auto &info) {
        return std::string(ctrl::mechanismName(std::get<0>(info.param))) +
               "_" + std::get<1>(info.param);
    });

TEST(EngineEquivalence, LowMlpMicrobenchmark)
{
    // pchase maximizes the skipped-span fraction: the most aggressive
    // exercise of the horizon machinery.
    for (auto m : {ctrl::Mechanism::BkInOrder, ctrl::Mechanism::BurstTH}) {
        ExperimentConfig cfg;
        cfg.workload = "pchase";
        cfg.mechanism = m;
        cfg.instructions = kInstr;
        const RunResult step = runWith(cfg, EngineKind::Step);
        const RunResult skip = runWith(cfg, EngineKind::Skip);
        EXPECT_EQ(resultJson(step), resultJson(skip))
            << ctrl::mechanismName(m);
    }
}

TEST(EngineEquivalence, Ddr266ByteIdentical)
{
    ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.device = DeviceGen::DDR_266;
    cfg.instructions = kInstr;
    const RunResult step = runWith(cfg, EngineKind::Step);
    const RunResult skip = runWith(cfg, EngineKind::Skip);
    EXPECT_EQ(resultJson(step), resultJson(skip));
}

TEST(EngineEquivalence, ObservabilityPillarsByteIdentical)
{
    // Stall attribution forces the per-tick stall scan (the lazy
    // horizon-memo path is off), but spans are still skipped with bulk
    // attribution; every pillar's export must not notice.
    ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.instructions = kInstr;
    cfg.obs.latencyBreakdown = true;
    cfg.obs.metricsInterval = 512;
    cfg.obs.stallAttribution = true;
    cfg.obs.audit = obs::AuditMode::Warn;

    const RunResult step = runWith(cfg, EngineKind::Step);
    const RunResult skip = runWith(cfg, EngineKind::Skip);

    EXPECT_EQ(resultJson(step), resultJson(skip));

    ASSERT_NE(step.obs, nullptr);
    ASSERT_NE(skip.obs, nullptr);
    const auto render = [](const obs::Observability &o, auto writer) {
        std::ostringstream os;
        (o.*writer)(os);
        return os.str();
    };
    EXPECT_EQ(render(*step.obs, &obs::Observability::writeStallJson),
              render(*skip.obs, &obs::Observability::writeStallJson));
    EXPECT_EQ(render(*step.obs, &obs::Observability::writeMetricsJson),
              render(*skip.obs, &obs::Observability::writeMetricsJson));

    // And the skip engine must not bend the DDR2 protocol to get there.
    EXPECT_EQ(step.obs->auditor()->violationCount(), 0u);
    EXPECT_EQ(skip.obs->auditor()->violationCount(), 0u);
}

TEST(EngineEquivalence, CmpByteIdentical)
{
    const std::vector<std::string> wls = {"swim", "mcf"};
    const CmpResult step = runCmpExperiment(
        wls, ctrl::Mechanism::BurstTH, kInstr, 52, EngineKind::Step);
    const CmpResult skip = runCmpExperiment(
        wls, ctrl::Mechanism::BurstTH, kInstr, 52, EngineKind::Skip);

    const auto render = [](const CmpResult &r) {
        std::ostringstream os;
        writeCmpResultJson(os, r);
        return os.str();
    };
    EXPECT_EQ(step.execCpuCycles, skip.execCpuCycles);
    EXPECT_EQ(render(step), render(skip));
}

TEST(SweepRunnerDeterminism, JobsDoNotChangeResults)
{
    // The same sweep on one worker and on eight must aggregate to
    // byte-identical results in the same order — completion-order
    // independence is the SweepRunner's contract.
    const std::vector<ctrl::Mechanism> mechs(
        std::begin(ctrl::kAllMechanisms), std::end(ctrl::kAllMechanisms));
    const auto serial = runMechanismSweep("gzip", mechs, kInstr, 1);
    const auto parallel = runMechanismSweep("gzip", mechs, kInstr, 8);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].mechanism, parallel[i].mechanism);
        EXPECT_EQ(resultJson(serial[i]), resultJson(parallel[i]))
            << ctrl::mechanismName(mechs[i]);
    }
}

TEST(SweepRunnerDeterminism, MapPreservesIndexOrder)
{
    SweepRunner pool(4);
    const auto out = pool.map<int>(64, [](std::size_t i) {
        return int(i) * 3; // trivially index-dependent
    });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], int(i) * 3);
}
