/**
 * @file
 * Engine equivalence: the event-driven cycle-skipping engine must be
 * byte-identical to the tick-accurate step engine — not approximately
 * equal, identical. Every statistic the simulator can emit (result
 * JSON, stall-attribution JSON, metrics time series) is compared as a
 * rendered string across the five scheduler classes, single-core and
 * CMP, DDR2-800 and DDR-266, with and without observability pillars.
 *
 * This suite is what licenses every horizon shortcut in the skip
 * engine: a scheduler nextEventTick() that overshoots, a stale horizon
 * memo, or a non-idempotent idle-span replay shows up here as a
 * one-byte diff.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <tuple>

#include "obs/observability.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/sweep_runner.hh"

using namespace bsim;
using namespace bsim::sim;

namespace
{

constexpr std::uint64_t kInstr = 20'000;

/** One mechanism per scheduler implementation: the five single-core
 *  classes plus the four contention-aware CMP families. */
const ctrl::Mechanism kSchedulerClasses[] = {
    ctrl::Mechanism::BkInOrder,       ctrl::Mechanism::RowHit,
    ctrl::Mechanism::Intel,           ctrl::Mechanism::Burst,
    ctrl::Mechanism::AdaptiveHistory, ctrl::Mechanism::FrFcfs,
    ctrl::Mechanism::Parbs,           ctrl::Mechanism::Atlas,
    ctrl::Mechanism::Bliss,
};

/** gtest parameter names must be alphanumeric: "FR-FCFS" -> "FR_FCFS". */
std::string
paramSafe(std::string s)
{
    for (char &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

std::string
resultJson(const RunResult &r)
{
    std::ostringstream os;
    writeResultJson(os, r);
    return os.str();
}

RunResult
runWith(ExperimentConfig cfg, EngineKind engine)
{
    cfg.engine = engine;
    return runExperiment(cfg);
}

} // namespace

class EveryPair
    : public testing::TestWithParam<std::tuple<ctrl::Mechanism, std::string>>
{
};

TEST_P(EveryPair, ResultJsonByteIdentical)
{
    ExperimentConfig cfg;
    cfg.mechanism = std::get<0>(GetParam());
    cfg.workload = std::get<1>(GetParam());
    cfg.instructions = kInstr;

    const RunResult step = runWith(cfg, EngineKind::Step);
    const RunResult skip = runWith(cfg, EngineKind::Skip);

    EXPECT_EQ(step.execCpuCycles, skip.execCpuCycles);
    EXPECT_EQ(step.memCycles, skip.memCycles);
    EXPECT_EQ(resultJson(step), resultJson(skip));
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EveryPair,
    testing::Combine(testing::ValuesIn(kSchedulerClasses),
                     testing::Values(std::string("mcf"),
                                     std::string("swim"),
                                     std::string("gzip"))),
    [](const auto &info) {
        return paramSafe(
            std::string(ctrl::mechanismName(std::get<0>(info.param))) +
            "_" + std::get<1>(info.param));
    });

TEST(EngineEquivalence, LowMlpMicrobenchmark)
{
    // pchase maximizes the skipped-span fraction: the most aggressive
    // exercise of the horizon machinery.
    for (auto m : {ctrl::Mechanism::BkInOrder, ctrl::Mechanism::BurstTH}) {
        ExperimentConfig cfg;
        cfg.workload = "pchase";
        cfg.mechanism = m;
        cfg.instructions = kInstr;
        const RunResult step = runWith(cfg, EngineKind::Step);
        const RunResult skip = runWith(cfg, EngineKind::Skip);
        EXPECT_EQ(resultJson(step), resultJson(skip))
            << ctrl::mechanismName(m);
    }
}

TEST(EngineEquivalence, Ddr266ByteIdentical)
{
    ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.device = DeviceGen::DDR_266;
    cfg.instructions = kInstr;
    const RunResult step = runWith(cfg, EngineKind::Step);
    const RunResult skip = runWith(cfg, EngineKind::Skip);
    EXPECT_EQ(resultJson(step), resultJson(skip));
}

TEST(EngineEquivalence, ObservabilityPillarsByteIdentical)
{
    // Stall attribution forces the per-tick stall scan (the lazy
    // horizon-memo path is off), but spans are still skipped with bulk
    // attribution; every pillar's export must not notice.
    ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.instructions = kInstr;
    cfg.obs.latencyBreakdown = true;
    cfg.obs.metricsInterval = 512;
    cfg.obs.stallAttribution = true;
    cfg.obs.audit = obs::AuditMode::Warn;

    const RunResult step = runWith(cfg, EngineKind::Step);
    const RunResult skip = runWith(cfg, EngineKind::Skip);

    EXPECT_EQ(resultJson(step), resultJson(skip));

    ASSERT_NE(step.obs, nullptr);
    ASSERT_NE(skip.obs, nullptr);
    const auto render = [](const obs::Observability &o, auto writer) {
        std::ostringstream os;
        (o.*writer)(os);
        return os.str();
    };
    EXPECT_EQ(render(*step.obs, &obs::Observability::writeStallJson),
              render(*skip.obs, &obs::Observability::writeStallJson));
    EXPECT_EQ(render(*step.obs, &obs::Observability::writeMetricsJson),
              render(*skip.obs, &obs::Observability::writeMetricsJson));

    // And the skip engine must not bend the DDR2 protocol to get there.
    EXPECT_EQ(step.obs->auditor()->violationCount(), 0u);
    EXPECT_EQ(skip.obs->auditor()->violationCount(), 0u);
}

TEST(EngineEquivalence, WatermarkDrainByteIdentical)
{
    // The watermark write-drain mode reads the GLOBAL write count, so
    // its flip lattice is the hardest cross-channel case the horizon
    // memo faces (an idle channel must not flip on remote traffic the
    // skip engine never wakes for). Every family, two workloads, with
    // the full cache stack and with the memo off.
    for (auto m : ctrl::kContentionMechanisms) {
        for (const char *wl : {"mcf", "swim"}) {
            ExperimentConfig cfg;
            cfg.workload = wl;
            cfg.mechanism = m;
            cfg.instructions = kInstr;
            cfg.watermarkDrain = true;
            const RunResult step = runWith(cfg, EngineKind::Step);
            const RunResult skip = runWith(cfg, EngineKind::Skip);
            EXPECT_EQ(resultJson(step), resultJson(skip))
                << ctrl::mechanismName(m) << " " << wl;
            cfg.horizonMemo = false;
            const RunResult bare = runWith(cfg, EngineKind::Skip);
            EXPECT_EQ(resultJson(step), resultJson(bare))
                << ctrl::mechanismName(m) << " " << wl << " (no memo)";
        }
    }
}

TEST(EngineEquivalence, CmpByteIdentical)
{
    const std::vector<std::string> wls = {"swim", "mcf"};
    const CmpResult step = runCmpExperiment(
        wls, ctrl::Mechanism::BurstTH, kInstr, 52, EngineKind::Step);
    const CmpResult skip = runCmpExperiment(
        wls, ctrl::Mechanism::BurstTH, kInstr, 52, EngineKind::Skip);

    const auto render = [](const CmpResult &r) {
        std::ostringstream os;
        writeCmpResultJson(os, r);
        return os.str();
    };
    EXPECT_EQ(step.execCpuCycles, skip.execCpuCycles);
    EXPECT_EQ(render(step), render(skip));
}

// ---------------------------------------------------------------------
// Horizon-memo invalidation edge cases. The skip engine caches per-bank
// release bounds and a per-channel horizon memo keyed on a scheduler
// "global signature" (threshold band, write-cap band). Each test below
// pins one way that cache can go stale if an invalidation hook is
// missing; all of them demand byte-identical statistics.
// ---------------------------------------------------------------------

TEST_P(EveryPair, MemoOffByteIdentical)
{
    // --no-horizon-memo must be purely an implementation toggle: same
    // result JSON as both the memoized skip engine and the step engine.
    ExperimentConfig cfg;
    cfg.mechanism = std::get<0>(GetParam());
    cfg.workload = std::get<1>(GetParam());
    cfg.instructions = kInstr;

    const RunResult step = runWith(cfg, EngineKind::Step);
    const RunResult skip = runWith(cfg, EngineKind::Skip);
    cfg.horizonMemo = false;
    const RunResult bare = runWith(cfg, EngineKind::Skip);

    EXPECT_EQ(resultJson(step), resultJson(bare));
    EXPECT_EQ(resultJson(skip), resultJson(bare));
}

TEST(HorizonMemoEdgeCases, MemoIsTransparentToSkipDecisions)
{
    // Stronger than byte-identical stats: the memo must not change
    // *which* cycles are skipped. Skipped/stepped introspection totals
    // must match exactly between memo-on and memo-off runs (the fuzz
    // engine_equivalence oracle checks the same invariant).
    for (auto m : kSchedulerClasses) {
        ExperimentConfig cfg;
        cfg.workload = "mcf";
        cfg.mechanism = m;
        cfg.instructions = kInstr;
        cfg.engine = EngineKind::Skip;
        cfg.obs.engineIntrospect = true;

        cfg.horizonMemo = true;
        const RunResult memo = runExperiment(cfg);
        cfg.horizonMemo = false;
        const RunResult bare = runExperiment(cfg);

        ASSERT_NE(memo.obs, nullptr);
        ASSERT_NE(bare.obs, nullptr);
        const auto *im = memo.obs->introspect();
        const auto *ib = bare.obs->introspect();
        EXPECT_EQ(im->steppedCycles(), ib->steppedCycles())
            << ctrl::mechanismName(m);
        EXPECT_EQ(im->skippedCycles(), ib->skippedCycles())
            << ctrl::mechanismName(m);
        EXPECT_EQ(memo.memCycles, bare.memCycles) << ctrl::mechanismName(m);
    }
}

TEST(HorizonMemoEdgeCases, ArrivalRacingThresholdFlip)
{
    // A tiny Burst threshold keeps writesOutstanding hovering around
    // the threshold band edges, so cross-channel arrivals flip the
    // drain decision *while the other channel's memo is armed*. The
    // signature band compare must catch every flip.
    for (std::size_t th : {std::size_t(1), std::size_t(4), std::size_t(16)}) {
        for (auto m : {ctrl::Mechanism::Burst, ctrl::Mechanism::BurstTH,
                       ctrl::Mechanism::Intel}) {
            ExperimentConfig cfg;
            cfg.workload = "swim"; // highest write fraction in the set
            cfg.mechanism = m;
            cfg.threshold = th;
            cfg.instructions = kInstr;
            const RunResult step = runWith(cfg, EngineKind::Step);
            const RunResult skip = runWith(cfg, EngineKind::Skip);
            EXPECT_EQ(resultJson(step), resultJson(skip))
                << ctrl::mechanismName(m) << " threshold=" << th;
        }
    }
}

TEST(HorizonMemoEdgeCases, RefreshDrainGateDuringCachedSpan)
{
    // Low-MLP traffic arms long cached spans; a refresh-dominated
    // tREFI forces the drain gate to close in the middle of them. A
    // cached Activate bound that ignored the gate would either issue
    // into the drain (audit violation / panic) or stall late (stat
    // diff).
    for (auto m : kSchedulerClasses) {
        ExperimentConfig cfg;
        cfg.workload = "pchase";
        cfg.mechanism = m;
        cfg.instructions = kInstr;
        cfg.timingVariant = TimingVariant::RefreshHeavy;
        const RunResult step = runWith(cfg, EngineKind::Step);
        const RunResult skip = runWith(cfg, EngineKind::Skip);
        EXPECT_EQ(resultJson(step), resultJson(skip))
            << ctrl::mechanismName(m);
    }
}

TEST(HorizonMemoEdgeCases, FuzzDerivedTimingVariants)
{
    // The timing perturbations the differential fuzzer mines (prime
    // tREFI against the span lattice, zero inter-activate windows,
    // refresh off) — each family must stay byte-identical under all of
    // them with the full cache stack on.
    for (std::size_t v = 0; v < kNumTimingVariants; ++v) {
        for (auto m : kSchedulerClasses) {
            ExperimentConfig cfg;
            cfg.workload = "mcf";
            cfg.mechanism = m;
            cfg.instructions = kInstr / 2;
            cfg.timingVariant = TimingVariant(v);
            const RunResult step = runWith(cfg, EngineKind::Step);
            const RunResult skip = runWith(cfg, EngineKind::Skip);
            EXPECT_EQ(resultJson(step), resultJson(skip))
                << ctrl::mechanismName(m) << " variant="
                << timingVariantName(TimingVariant(v));
        }
    }
}

TEST(HorizonMemoEdgeCases, McfLikeBlockingCoreSkipsMajorityOfCycles)
{
    // The perf claim behind this machinery, asserted as a regression
    // gate: on a low-MLP (blocking) core running the mcf profile, the
    // skip engine must skip at least half of all memory cycles for the
    // main read-priority families. Measured ~60% for each; 50% leaves
    // margin without tolerating a horizon regression.
    for (auto m : {ctrl::Mechanism::Burst, ctrl::Mechanism::Intel,
                   ctrl::Mechanism::RowHit}) {
        ExperimentConfig cfg;
        cfg.workload = "mcf";
        cfg.mechanism = m;
        cfg.instructions = kInstr;
        cfg.robSize = 1;
        cfg.issueWidth = 1;
        cfg.engine = EngineKind::Skip;
        cfg.obs.engineIntrospect = true;
        const RunResult r = runExperiment(cfg);
        ASSERT_NE(r.obs, nullptr);
        const auto *in = r.obs->introspect();
        ASSERT_NE(in, nullptr);
        EXPECT_TRUE(in->identityHolds(r.memCycles))
            << ctrl::mechanismName(m);
        EXPECT_GE(in->skippedCycles() * 2, r.memCycles)
            << ctrl::mechanismName(m) << ": skipped "
            << in->skippedCycles() << " of " << r.memCycles;
    }
}

TEST(SweepRunnerDeterminism, JobsDoNotChangeResults)
{
    // The same sweep on one worker and on eight must aggregate to
    // byte-identical results in the same order — completion-order
    // independence is the SweepRunner's contract.
    const std::vector<ctrl::Mechanism> mechs(
        std::begin(ctrl::kAllMechanisms), std::end(ctrl::kAllMechanisms));
    const auto serial = runMechanismSweep("gzip", mechs, kInstr, 1);
    const auto parallel = runMechanismSweep("gzip", mechs, kInstr, 8);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].mechanism, parallel[i].mechanism);
        EXPECT_EQ(resultJson(serial[i]), resultJson(parallel[i]))
            << ctrl::mechanismName(mechs[i]);
    }
}

TEST(SweepRunnerDeterminism, MapPreservesIndexOrder)
{
    SweepRunner pool(4);
    const auto out = pool.map<int>(64, [](std::size_t i) {
        return int(i) * 3; // trivially index-dependent
    });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], int(i) * 3);
}
