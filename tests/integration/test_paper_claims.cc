/**
 * @file
 * Integration tests asserting the paper's qualitative claims on
 * scaled-down runs. These are the guardrails that keep the reproduction
 * honest: if a refactor breaks one of the paper's orderings, these fail.
 *
 * Runs are small (tens of thousands of instructions) so thresholds are
 * generous; the bench binaries reproduce the full-scale numbers.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

using namespace bsim;
using namespace bsim::sim;

namespace
{

RunResult
run(const std::string &wl, ctrl::Mechanism m, std::uint64_t instr = 60000)
{
    ExperimentConfig cfg;
    cfg.workload = wl;
    cfg.mechanism = m;
    cfg.instructions = instr;
    return runExperiment(cfg);
}

} // namespace

TEST(PaperClaims, BurstThBeatsBaselineOnStreaming)
{
    // The headline (Section 5.3): burst scheduling with threshold
    // substantially reduces execution time vs bank-in-order.
    const auto base = run("swim", ctrl::Mechanism::BkInOrder);
    const auto th = run("swim", ctrl::Mechanism::BurstTH);
    EXPECT_LT(double(th.execCpuCycles), 0.85 * double(base.execCpuCycles));
}

TEST(PaperClaims, OutOfOrderMechanismsReduceReadLatency)
{
    // Figure 7(a): every OoO mechanism cuts read latency vs BkInOrder.
    const auto base = run("swim", ctrl::Mechanism::BkInOrder);
    for (auto m : {ctrl::Mechanism::RowHit, ctrl::Mechanism::Intel,
                   ctrl::Mechanism::Burst, ctrl::Mechanism::BurstTH}) {
        const auto r = run("swim", m);
        EXPECT_LT(r.ctrl.readLatency.mean(), base.ctrl.readLatency.mean())
            << ctrl::mechanismName(m);
    }
}

TEST(PaperClaims, PostponingMechanismsRaiseWriteLatency)
{
    // Figure 7(b): Intel and Burst postpone writes; RowHit does not.
    const auto base = run("swim", ctrl::Mechanism::BkInOrder);
    const auto rowhit = run("swim", ctrl::Mechanism::RowHit);
    const auto intel = run("swim", ctrl::Mechanism::Intel);
    const auto burst = run("swim", ctrl::Mechanism::Burst);
    EXPECT_GT(intel.ctrl.writeLatency.mean(),
              2.0 * base.ctrl.writeLatency.mean());
    EXPECT_GT(burst.ctrl.writeLatency.mean(),
              2.0 * base.ctrl.writeLatency.mean());
    EXPECT_LT(rowhit.ctrl.writeLatency.mean(),
              1.5 * base.ctrl.writeLatency.mean());
}

TEST(PaperClaims, PiggybackingCutsWriteLatencyAndSaturation)
{
    // Section 5.1: Burst_WP nearly eliminates write queue saturation;
    // write piggybacking reduces write latency vs Burst_RP.
    const auto rp = run("swim", ctrl::Mechanism::BurstRP);
    const auto wp = run("swim", ctrl::Mechanism::BurstWP);
    EXPECT_LT(wp.ctrl.writeLatency.mean(), rp.ctrl.writeLatency.mean());
    EXPECT_LT(wp.ctrl.writeSaturationRate(),
              rp.ctrl.writeSaturationRate());
}

TEST(PaperClaims, ThresholdInterpolatesSaturation)
{
    // Figure 11: saturation grows with the threshold.
    ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.instructions = 60000;
    cfg.threshold = 8;
    const auto low = runExperiment(cfg);
    cfg.threshold = 64;
    const auto high = runExperiment(cfg);
    EXPECT_LE(low.ctrl.writeSaturationRate(),
              high.ctrl.writeSaturationRate());
}

TEST(PaperClaims, OutOfOrderRaisesRowHitRate)
{
    // Figure 9(a): reordering turns conflicts into hits.
    const auto base = run("swim", ctrl::Mechanism::BkInOrder);
    const auto rowhit = run("swim", ctrl::Mechanism::RowHit);
    const auto th = run("swim", ctrl::Mechanism::BurstTH);
    EXPECT_GT(rowhit.ctrl.rowHitRate(), base.ctrl.rowHitRate() + 0.05);
    EXPECT_GT(th.ctrl.rowHitRate(), base.ctrl.rowHitRate() + 0.05);
}

TEST(PaperClaims, PiggybackingRaisesRowHitRateOverPlainBurst)
{
    // Figure 9(a): Burst_WP/Burst_TH exploit row hits in writes that
    // plain Burst misses.
    const auto burst = run("swim", ctrl::Mechanism::Burst);
    const auto wp = run("swim", ctrl::Mechanism::BurstWP);
    EXPECT_GT(wp.ctrl.rowHitRate(), burst.ctrl.rowHitRate());
}

TEST(PaperClaims, BurstThRaisesDataBusUtilization)
{
    // Figure 9(b) / Section 5.2: effective bandwidth improves.
    const auto base = run("swim", ctrl::Mechanism::BkInOrder);
    const auto th = run("swim", ctrl::Mechanism::BurstTH);
    EXPECT_GT(th.dataBusUtil, base.dataBusUtil);
    EXPECT_GT(th.bandwidthGBs, base.bandwidthGBs);
}

TEST(PaperClaims, PreemptionHelpsPointerChasing)
{
    // Section 5.3: read preemption gives mcf-class benchmarks more than
    // write piggybacking does.
    const auto rp = run("mcf", ctrl::Mechanism::BurstRP);
    const auto wp = run("mcf", ctrl::Mechanism::BurstWP);
    EXPECT_LT(rp.execCpuCycles, wp.execCpuCycles);
}

TEST(PaperClaims, ReadPreemptionRaisesRowEmptyRate)
{
    // Section 5.2: preempting reads often find a precharged bank.
    const auto burst = run("swim", ctrl::Mechanism::Burst);
    const auto rp = run("swim", ctrl::Mechanism::BurstRP);
    EXPECT_GT(rp.ctrl.rowEmptyRate(), burst.ctrl.rowEmptyRate());
}
