/**
 * @file
 * Poison-ledger tests: strike accumulation and quarantine thresholds,
 * atomic save / merge-on-load persistence, and tolerance of malformed
 * ledger lines (the same crash-debris posture as the sweep journal).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/poison.hh"

using namespace bsim;
using namespace bsim::campaign;

namespace
{

std::string
tempPath(const char *name)
{
    return testing::TempDir() + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

} // namespace

TEST(PoisonList, StrikesAccumulateAndQuarantineAtThreshold)
{
    PoisonList list; // default threshold: 2
    EXPECT_EQ(list.strikes(0x11), 0u);
    EXPECT_FALSE(list.quarantined(0x11));

    list.strike(0x11, "cfg-a", "swim/Burst_TH", SIGSEGV, -1);
    EXPECT_EQ(list.strikes(0x11), 1u);
    EXPECT_FALSE(list.quarantined(0x11)) << "one crash may be bad luck";

    const PoisonEntry &e =
        list.strike(0x11, "cfg-a", "swim/Burst_TH", SIGABRT, -1);
    EXPECT_EQ(e.strikes, 2u);
    EXPECT_TRUE(list.quarantined(0x11));
    // The last death wins the record.
    EXPECT_EQ(e.signal, SIGABRT);
    EXPECT_NE(e.describeDeath().find("signal 6"), std::string::npos);

    // Other keys are unaffected.
    EXPECT_FALSE(list.quarantined(0x22));
}

TEST(PoisonList, CustomThresholdAndExitDeaths)
{
    PoisonList list(3);
    list.strike(0x5, "c", "l", 0, 139);
    list.strike(0x5, "c", "l", 0, 139);
    EXPECT_FALSE(list.quarantined(0x5));
    const PoisonEntry &e = list.strike(0x5, "c", "l", 0, 139);
    EXPECT_TRUE(list.quarantined(0x5));
    EXPECT_EQ(e.describeDeath(), "exit 139");
}

TEST(PoisonList, SaveLoadRoundTripsEverything)
{
    const std::string path = tempPath("poison_rt.list");
    std::remove(path.c_str());

    PoisonList list;
    list.strike(0xdeadbeef, "workload=swim mech=BurstTH",
                "swim/Burst_TH", SIGKILL, -1);
    list.strike(0x2, "cfg-b", "art/RowHit", 0, 134);
    list.strike(0x2, "cfg-b", "art/RowHit", 0, 134);
    list.save(path);

    // Atomic rewrite: no .tmp debris survives a successful save.
    EXPECT_TRUE(slurp(path + ".tmp").empty());

    PoisonList loaded;
    loaded.load(path);
    EXPECT_EQ(loaded.entries().size(), 2u);
    EXPECT_EQ(loaded.strikes(0xdeadbeef), 1u);
    EXPECT_TRUE(loaded.quarantined(0x2));
    const PoisonEntry &e = loaded.entries().at(0xdeadbeef);
    EXPECT_EQ(e.signal, SIGKILL);
    EXPECT_EQ(e.exitCode, -1);
    EXPECT_EQ(e.label, "swim/Burst_TH");
    EXPECT_EQ(e.canonical, "workload=swim mech=BurstTH");
    std::remove(path.c_str());
}

TEST(PoisonList, LoadMergesKeepingWorseStrikeCount)
{
    const std::string path = tempPath("poison_merge.list");
    {
        PoisonList disk;
        disk.strike(0x7, "c", "l", SIGSEGV, -1);
        disk.strike(0x7, "c", "l", SIGSEGV, -1);
        disk.save(path);
    }
    // In-memory knows one strike; disk knows two: disk wins.
    PoisonList list;
    list.strike(0x7, "c", "l", SIGABRT, -1);
    list.load(path);
    EXPECT_EQ(list.strikes(0x7), 2u);
    EXPECT_TRUE(list.quarantined(0x7));
    std::remove(path.c_str());
}

TEST(PoisonList, MalformedLinesAreSkippedNotFatal)
{
    const std::string path = tempPath("poison_torn.list");
    {
        std::ofstream os(path);
        os << "# header comment\n"
           << "X 0000000000000001 strikes=2 signal=6 exit=-1 "
              "label=\"a/b\" cfg=\"c\"\n"
           << "garbage line\n"
           << "X 0000000000000002 stri"; // torn mid-append
    }
    PoisonList list;
    list.load(path);
    EXPECT_EQ(list.entries().size(), 1u);
    EXPECT_TRUE(list.quarantined(0x1));
    std::remove(path.c_str());
}

TEST(PoisonList, MissingFileLoadsEmptyAndEntriesSort)
{
    PoisonList list;
    list.load(tempPath("poison_nope.list"));
    EXPECT_TRUE(list.entries().empty());

    list.strike(0x30, "c", "l", 9, -1);
    list.strike(0x30, "c", "l", 9, -1);
    list.strike(0x10, "c", "l", 9, -1);
    list.strike(0x10, "c", "l", 9, -1);
    list.strike(0x20, "c", "l", 9, -1); // only one strike: not listed
    const auto q = list.quarantinedEntries();
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0].key, 0x10u);
    EXPECT_EQ(q[1].key, 0x30u);
}
