/**
 * @file
 * Campaign shard layout tests: directory path schema, the contiguous
 * balanced partition plan, --only-shards subsetting, and the fail-fast
 * validation that runs before any worker is forked.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "campaign/shard.hh"

#include "sim_error_util.hh"

using namespace bsim;
using namespace bsim::campaign;

namespace
{

std::string
tempPath(const char *name)
{
    return testing::TempDir() + "/" + name;
}

} // namespace

TEST(CampaignLayout, PathSchemaIsStable)
{
    const CampaignLayout layout("/camp");
    EXPECT_EQ(layout.shardJournal(0), "/camp/shard-000.journal");
    EXPECT_EQ(layout.shardProgress(7), "/camp/shard-007.progress");
    EXPECT_EQ(layout.shardLog(123), "/camp/shard-123.log");
    EXPECT_EQ(layout.poisonList(), "/camp/poison.list");
}

TEST(PlanShards, FullPlanCoversEveryPointOnce)
{
    const auto plans = planShards(10, 3);
    ASSERT_EQ(plans.size(), 3u);
    std::size_t next = 0;
    for (unsigned s = 0; s < 3; ++s) {
        EXPECT_EQ(plans[s].id, s);
        for (const std::size_t slot : plans[s].slots)
            EXPECT_EQ(slot, next++);
    }
    EXPECT_EQ(next, 10u);
    // Balanced: 4 + 3 + 3.
    EXPECT_EQ(plans[0].slots.size(), 4u);
    EXPECT_EQ(plans[1].slots.size(), 3u);
    EXPECT_EQ(plans[2].slots.size(), 3u);
}

TEST(PlanShards, OnlySubsetPlansJustThoseShards)
{
    const auto plans = planShards(10, 4, {2, 0});
    ASSERT_EQ(plans.size(), 2u);
    // Returned in id order regardless of the argument order.
    EXPECT_EQ(plans[0].id, 0u);
    EXPECT_EQ(plans[1].id, 2u);
    // Each shard's slots equal the full plan's slice for that id.
    const auto full = planShards(10, 4);
    EXPECT_EQ(plans[0].slots, full[0].slots);
    EXPECT_EQ(plans[1].slots, full[2].slots);
}

TEST(PlanShards, FailFastOnBadGeometry)
{
    EXPECT_SIM_ERROR(planShards(0, 1), ErrorCategory::Config,
                     "no points");
    EXPECT_SIM_ERROR(planShards(10, 0), ErrorCategory::Config,
                     "shard count");
    // More shards than points: some worker would own nothing.
    EXPECT_SIM_ERROR(planShards(3, 4), ErrorCategory::Config,
                     "exceeds point count");
    EXPECT_SIM_ERROR(planShards(10, 4, {4}), ErrorCategory::Config,
                     "out of range");
    // Duplicate ids would fork two workers onto one journal.
    EXPECT_SIM_ERROR(planShards(10, 4, {1, 1}), ErrorCategory::Config,
                     "duplicate shard id");
}

TEST(EnsureCampaignDir, CreatesDirectoryAndProbesWritability)
{
    const std::string dir = tempPath("campdir_new");
    std::remove(dir.c_str());
    ensureCampaignDir(dir);
    // Directory exists and is writable now.
    std::ofstream probe(dir + "/x");
    EXPECT_TRUE(probe.good());
    probe.close();
    std::remove((dir + "/x").c_str());
    // Idempotent on an existing directory.
    ensureCampaignDir(dir);
}

TEST(EnsureCampaignDir, FailsFastWhenUnwritable)
{
    EXPECT_SIM_ERROR(ensureCampaignDir(""), ErrorCategory::Config,
                     "--dir");
    // A path under a regular file can never become a directory.
    const std::string file = tempPath("campdir_file");
    std::ofstream(file) << "x";
    EXPECT_SIM_ERROR(ensureCampaignDir(file + "/sub"),
                     ErrorCategory::Resource, "not writable");
    std::remove(file.c_str());
}
