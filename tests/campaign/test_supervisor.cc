/**
 * @file
 * Campaign supervisor tests, run against real forked workers:
 *  - a clean sharded campaign reproduces the unsharded sweep CSV
 *    byte-for-byte (and merge == run);
 *  - a worker crash retries with backoff and succeeds;
 *  - a point that kills its worker twice is quarantined with the death
 *    recorded, and the rest of the campaign completes degraded;
 *  - a hung (SIGSTOP-frozen) worker is deadline-killed through the
 *    SIGTERM-then-SIGKILL escalation;
 *  - SIGKILLing the supervisor itself mid-campaign loses nothing: a
 *    rerun resumes from the shard journals to the identical CSV.
 *
 * Crash injection uses the BURSTSIM_CRASH_* environment (see
 * sim/sweep.hh); keys are config keys, so the target point is stable
 * across incarnations and quarantine-filtered relaunches.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/supervisor.hh"
#include "sim/sweep.hh"

#include "sim_error_util.hh"

using namespace bsim;
using namespace bsim::campaign;

namespace
{

/** Unset every crash-injection variable on scope exit, so one test's
 *  injection can never leak into another's workers. */
struct EnvGuard
{
    ~EnvGuard()
    {
        for (const char *n :
             {"BURSTSIM_CRASH_POINT", "BURSTSIM_CRASH_KEY",
              "BURSTSIM_CRASH_MODE", "BURSTSIM_CRASH_ONCE"})
            ::unsetenv(n);
    }
    void
    set(const char *name, const std::string &value)
    {
        ::setenv(name, value.c_str(), 1);
    }
};

/** Six fast points: two workloads under three mechanisms each. */
std::vector<sim::ExperimentConfig>
sixPoints()
{
    std::vector<sim::ExperimentConfig> points;
    for (const char *wl : {"swim", "art"}) {
        for (const ctrl::Mechanism m :
             {ctrl::Mechanism::BkInOrder, ctrl::Mechanism::RowHit,
              ctrl::Mechanism::BurstTH}) {
            sim::ExperimentConfig cfg;
            cfg.workload = wl;
            cfg.instructions = 1500;
            cfg.mechanism = m;
            points.push_back(cfg);
        }
    }
    return points;
}

/** A fresh (empty) campaign directory under the test tmpdir. */
std::string
freshDir(const char *name)
{
    const std::string dir = testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

CampaignOptions
baseOptions(const std::string &dir)
{
    CampaignOptions opt;
    opt.dir = dir;
    opt.shards = 2;
    opt.workerJobs = 1;        // deterministic in-worker point order
    opt.heartbeatSec = 0.05;
    opt.workerDeadlineSec = 30; // generous: only hung tests tighten it
    opt.killGraceSec = 1;
    opt.backoffBaseSec = 0.01; // keep crash tests fast
    opt.backoffCapSec = 0.05;
    opt.journalSync = false;   // tmpfs tests; durability irrelevant
    return opt;
}

std::string
csvOf(const std::vector<sim::ExperimentConfig> &points,
      const sim::SweepReport &rep)
{
    std::ostringstream os;
    sim::writeSweepCsv(os, points, rep);
    return os.str();
}

std::string
keyHex(const sim::ExperimentConfig &cfg)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, sim::configKey(cfg));
    return buf;
}

} // namespace

TEST(CampaignSupervisor, CleanShardedRunMatchesSweepCsvByteForByte)
{
    const auto points = sixPoints();
    const std::string dir = freshDir("camp_clean");

    // The reference: an ordinary unsharded in-process sweep (parallel,
    // to prove slot order does not depend on completion order).
    sim::SweepOptions sweepOpt;
    sweepOpt.jobs = 4;
    const std::string fresh =
        csvOf(points, sim::runExperimentSweep(points, sweepOpt));

    CampaignOptions opt = baseOptions(dir);
    opt.shards = 3;
    const CampaignReport rep = runCampaign(points, opt);

    EXPECT_FALSE(rep.degraded());
    EXPECT_FALSE(rep.cancelled);
    EXPECT_TRUE(rep.quarantined.empty());
    ASSERT_EQ(rep.shards.size(), 3u);
    for (const ShardOutcome &s : rep.shards) {
        EXPECT_TRUE(s.completed);
        EXPECT_EQ(s.launches, 1u);
        EXPECT_EQ(s.crashes, 0u);
    }
    EXPECT_EQ(csvOf(points, rep.sweep), fresh);

    // Offline merge over the same directory reproduces it again.
    const CampaignReport merged = mergeCampaign(points, opt);
    EXPECT_FALSE(merged.degraded());
    EXPECT_EQ(csvOf(points, merged.sweep), fresh);
    EXPECT_EQ(merged.sweep.journaled(), points.size());
}

TEST(CampaignSupervisor, ValidationFailsBeforeAnyFork)
{
    const auto points = sixPoints();
    CampaignOptions opt = baseOptions(freshDir("camp_validate"));

    opt.shards = 7; // more shards than points
    EXPECT_SIM_ERROR(validateCampaign(points, opt),
                     ErrorCategory::Config, "exceeds point count");

    opt = baseOptions(freshDir("camp_validate"));
    opt.onlyShards = {1, 1};
    EXPECT_SIM_ERROR(validateCampaign(points, opt),
                     ErrorCategory::Config, "duplicate shard id");

    opt = baseOptions(freshDir("camp_validate"));
    opt.maxLaunches = 0;
    EXPECT_SIM_ERROR(validateCampaign(points, opt),
                     ErrorCategory::Config, "max-launches");

    // A deadline inside the heartbeat period would kill every healthy
    // worker as stale.
    opt = baseOptions(freshDir("camp_validate"));
    opt.heartbeatSec = 1.0;
    opt.workerDeadlineSec = 1.5;
    EXPECT_SIM_ERROR(validateCampaign(points, opt),
                     ErrorCategory::Config, "heartbeat");

    // Unwritable campaign directory: a path under a regular file.
    const std::string file = testing::TempDir() + "/camp_not_a_dir";
    std::ofstream(file) << "x";
    opt = baseOptions(file + "/sub");
    EXPECT_SIM_ERROR(validateCampaign(points, opt),
                     ErrorCategory::Resource, "not writable");
    std::remove(file.c_str());
}

TEST(CampaignSupervisor, CrashedWorkerRestartsAndPointSucceedsOnRetry)
{
    const auto points = sixPoints();
    const std::string dir = freshDir("camp_once");
    const std::string fresh =
        csvOf(points, sim::runExperimentSweep(points, {}));

    // Slot 2 (last point of shard 0) kills its worker exactly once.
    EnvGuard env;
    env.set("BURSTSIM_CRASH_KEY", keyHex(points[2]));
    env.set("BURSTSIM_CRASH_MODE", "abort");
    env.set("BURSTSIM_CRASH_ONCE", dir + "/crash.marker");

    CampaignOptions opt = baseOptions(dir);
    const CampaignReport rep = runCampaign(points, opt);

    // One crash, one relaunch, full recovery: not degraded.
    EXPECT_FALSE(rep.degraded());
    EXPECT_TRUE(rep.quarantined.empty());
    ASSERT_EQ(rep.shards.size(), 2u);
    EXPECT_EQ(rep.shards[0].crashes, 1u);
    EXPECT_EQ(rep.shards[0].launches, 2u);
    EXPECT_TRUE(rep.shards[0].completed);
    EXPECT_EQ(rep.shards[0].lastSignal, 0);
    EXPECT_EQ(rep.shards[1].crashes, 0u);
    EXPECT_EQ(csvOf(points, rep.sweep), fresh);

    // The survived point carries exactly one strike in the ledger.
    PoisonList poison;
    poison.load(CampaignLayout(dir).poisonList());
    EXPECT_EQ(poison.strikes(sim::configKey(points[2])), 1u);
    EXPECT_FALSE(poison.quarantined(sim::configKey(points[2])));
}

TEST(CampaignSupervisor, DoubleCrashQuarantinesPointAndCampaignCompletes)
{
    const auto points = sixPoints();
    const std::string dir = freshDir("camp_poison");

    // Slot 2 kills its worker on *every* attempt (no one-shot marker).
    EnvGuard env;
    env.set("BURSTSIM_CRASH_KEY", keyHex(points[2]));
    env.set("BURSTSIM_CRASH_MODE", "abort");

    CampaignOptions opt = baseOptions(dir);
    const CampaignReport rep = runCampaign(points, opt);

    // The poison point is quarantined with its death recorded...
    EXPECT_TRUE(rep.degraded());
    ASSERT_EQ(rep.quarantined.size(), 1u);
    EXPECT_EQ(rep.quarantined[0].slot, 2u);
    EXPECT_EQ(rep.quarantined[0].entry.strikes, 2u);
    EXPECT_EQ(rep.quarantined[0].entry.signal, SIGABRT);
    EXPECT_FALSE(rep.sweep.slots[2].run.ok);
    EXPECT_EQ(rep.sweep.slots[2].run.category,
              ErrorCategory::WorkerLost);
    EXPECT_NE(rep.sweep.slots[2].run.error.find("quarantined"),
              std::string::npos);

    // ...and every other point still completed.
    for (std::size_t i = 0; i < points.size(); ++i)
        if (i != 2)
            EXPECT_TRUE(rep.sweep.slots[i].run.ok) << "slot " << i;
    ASSERT_EQ(rep.shards.size(), 2u);
    EXPECT_EQ(rep.shards[0].crashes, 2u);
    EXPECT_EQ(rep.shards[0].launches, 3u);
    EXPECT_TRUE(rep.shards[0].completed);
    EXPECT_FALSE(rep.shards[0].gaveUp);

    // The quarantine row renders as failed(worker_lost) in the CSV,
    // and offline merge reproduces the whole report exactly.
    const std::string csv = csvOf(points, rep.sweep);
    EXPECT_NE(csv.find("failed,2,worker_lost"), std::string::npos)
        << csv;
    const CampaignReport merged = mergeCampaign(points, opt);
    EXPECT_EQ(csvOf(points, merged.sweep), csv);
    ASSERT_EQ(merged.quarantined.size(), 1u);
    EXPECT_EQ(merged.quarantined[0].slot, 2u);
}

TEST(CampaignSupervisor, RepeatedCrashesWithoutQuarantineGiveUpShard)
{
    const auto points = sixPoints();
    const std::string dir = freshDir("camp_giveup");

    EnvGuard env;
    env.set("BURSTSIM_CRASH_KEY", keyHex(points[2]));
    env.set("BURSTSIM_CRASH_MODE", "exit:97"); // unknown exit = crash

    CampaignOptions opt = baseOptions(dir);
    opt.quarantineStrikes = 99; // never quarantine...
    opt.maxLaunches = 2;        // ...so the launch cap must stop it
    const CampaignReport rep = runCampaign(points, opt);

    EXPECT_TRUE(rep.degraded());
    EXPECT_TRUE(rep.quarantined.empty());
    ASSERT_EQ(rep.shards.size(), 2u);
    EXPECT_TRUE(rep.shards[0].gaveUp);
    EXPECT_FALSE(rep.shards[0].completed);
    EXPECT_EQ(rep.shards[0].launches, 2u);
    EXPECT_EQ(rep.shards[0].lastExit, 97);
    // The crash point never completed anywhere: reported skipped.
    EXPECT_TRUE(rep.sweep.slots[2].run.skipped());
    // Points journaled before the crashes still made it out.
    EXPECT_TRUE(rep.sweep.slots[0].run.ok);
    EXPECT_TRUE(rep.sweep.slots[1].run.ok);
    // The other shard is untouched by shard 0's misery.
    EXPECT_TRUE(rep.shards[1].completed);
    EXPECT_TRUE(rep.sweep.slots[4].run.ok);
}

TEST(CampaignSupervisor, ContainedFailureSurvivesMergeWithItsCategory)
{
    // An unknown workload fails *inside* the worker (SimError(Config),
    // contained by the sweep runner — worker exits 4, no crash). The
    // campaign must report the same CSV as an in-process sweep,
    // category and error text included, even though failed points are
    // deliberately never journaled.
    auto points = sixPoints();
    points[4].workload = "no-such-workload";
    const std::string fresh =
        csvOf(points, sim::runExperimentSweep(points, {}));

    CampaignOptions opt = baseOptions(freshDir("camp_contained"));
    const CampaignReport rep = runCampaign(points, opt);

    EXPECT_TRUE(rep.degraded());
    EXPECT_TRUE(rep.quarantined.empty());
    ASSERT_EQ(rep.shards.size(), 2u);
    EXPECT_EQ(rep.shards[1].crashes, 0u);
    EXPECT_TRUE(rep.shards[1].completed);
    EXPECT_FALSE(rep.sweep.slots[4].run.ok);
    EXPECT_EQ(rep.sweep.slots[4].run.category, ErrorCategory::Config);
    EXPECT_EQ(csvOf(points, rep.sweep), fresh);
}

TEST(CampaignSupervisor, HungWorkerIsDeadlineKilledAndQuarantined)
{
    const auto points = sixPoints();
    const std::string dir = freshDir("camp_hang");

    // "stop" freezes the whole worker (heartbeat thread included) at
    // slot 2 — a stuck syscall as the liveness monitor sees it. A
    // frozen process cannot act on SIGTERM, so this exercises the
    // SIGKILL escalation, twice, into quarantine.
    EnvGuard env;
    env.set("BURSTSIM_CRASH_KEY", keyHex(points[2]));
    env.set("BURSTSIM_CRASH_MODE", "stop");

    CampaignOptions opt = baseOptions(dir);
    opt.workerDeadlineSec = 0.6;
    opt.killGraceSec = 0.25;
    const CampaignReport rep = runCampaign(points, opt);

    EXPECT_TRUE(rep.degraded());
    ASSERT_EQ(rep.quarantined.size(), 1u);
    EXPECT_EQ(rep.quarantined[0].slot, 2u);
    EXPECT_EQ(rep.quarantined[0].entry.signal, SIGKILL);
    ASSERT_EQ(rep.shards.size(), 2u);
    EXPECT_GE(rep.shards[0].deadlineKills, 2u);
    EXPECT_EQ(rep.shards[0].crashes, 2u);
    EXPECT_TRUE(rep.shards[0].completed);
    // The healthy shard never tripped the deadline.
    EXPECT_EQ(rep.shards[1].deadlineKills, 0u);
    for (std::size_t i = 0; i < points.size(); ++i)
        if (i != 2)
            EXPECT_TRUE(rep.sweep.slots[i].run.ok) << "slot " << i;
}

TEST(CampaignSupervisor, SigkilledSupervisorResumesToIdenticalCsv)
{
    const auto points = sixPoints();
    const std::string dir = freshDir("camp_resume");
    const std::string fresh =
        csvOf(points, sim::runExperimentSweep(points, {}));
    const CampaignLayout layout(dir);

    // Child: a supervisor whose shard-0 worker freezes at slot 2, with
    // liveness kills disabled — the campaign hangs mid-flight forever,
    // until we SIGKILL the whole process group (supervisor included).
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::setpgid(0, 0);
        ::setenv("BURSTSIM_CRASH_KEY", keyHex(points[2]).c_str(), 1);
        ::setenv("BURSTSIM_CRASH_MODE", "stop", 1);
        CampaignOptions opt = baseOptions(dir);
        opt.workerDeadlineSec = 0; // never kill: stay hung
        opt.journalSync = true;    // the durability claim under test
        try {
            runCampaign(points, opt);
        } catch (...) {
        }
        ::_exit(0);
    }
    ::setpgid(pid, pid); // either side may win this race; both are fine

    // Wait until real progress exists on disk: shard 0 journaled the
    // two points before the freeze, shard 1 completed all three.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    for (;;) {
        const std::size_t s0 =
            sim::scanSweepJournal(layout.shardJournal(0)).records.size();
        const std::size_t s1 =
            sim::scanSweepJournal(layout.shardJournal(1)).records.size();
        if (s0 >= 2 && s1 >= 3)
            break;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "campaign never reached the hung state (shard0="
            << s0 << " shard1=" << s1 << ")";
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    // SIGKILL the supervisor and its workers mid-campaign.
    ::kill(-pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));

    // Resume: same directory, no crash injection. Journaled points are
    // restored, only the victim point reruns, and the final CSV is
    // byte-identical to the unsharded fresh sweep.
    const CampaignReport rep =
        runCampaign(points, baseOptions(dir));
    EXPECT_FALSE(rep.degraded());
    EXPECT_TRUE(rep.quarantined.empty());
    EXPECT_GE(rep.sweep.journaled(), 5u);
    EXPECT_EQ(csvOf(points, rep.sweep), fresh);
}
