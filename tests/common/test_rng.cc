/**
 * @file
 * Tests for the deterministic PRNG — reproducibility is load-bearing for
 * every experiment in the reproduction.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

using namespace bsim;

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const std::uint64_t first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(r.below(1), 0u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(17);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(19);
    for (int i = 0; i < 100; ++i) {
        ASSERT_FALSE(r.chance(0.0));
        ASSERT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(23);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(double(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, RunLengthBounds)
{
    Rng r(29);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t len = r.runLength(4.0, 16);
        ASSERT_GE(len, 1u);
        ASSERT_LE(len, 16u);
    }
}

TEST(Rng, RunLengthMeanApproximate)
{
    Rng r(31);
    double sum = 0;
    for (int i = 0; i < 20000; ++i)
        sum += double(r.runLength(4.0, 1000));
    EXPECT_NEAR(sum / 20000.0, 4.0, 0.3);
}

TEST(Rng, RunLengthDegenerateMean)
{
    Rng r(37);
    EXPECT_EQ(r.runLength(0.5, 16), 1u);
    EXPECT_EQ(r.runLength(1.0, 16), 1u);
}
