/**
 * @file
 * Argument parser tests.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/args.hh"

#include "sim_error_util.hh"

using namespace bsim;

namespace
{

/** Build argv from strings. */
struct Argv
{
    explicit Argv(std::vector<std::string> a) : strings(std::move(a))
    {
        ptrs.push_back("prog");
        for (const auto &s : strings)
            ptrs.push_back(s.c_str());
    }
    int argc() const { return int(ptrs.size()); }
    const char *const *argv() const { return ptrs.data(); }
    std::vector<std::string> strings;
    std::vector<const char *> ptrs;
};

ArgParser
makeParser()
{
    ArgParser p("prog", "test program");
    p.addFlag("verbose", "be chatty");
    p.addOption("workload", "swim", "benchmark");
    p.addOption("count", "100", "how many");
    return p;
}

} // namespace

TEST(Args, DefaultsWhenAbsent)
{
    ArgParser p = makeParser();
    Argv a({});
    std::ostringstream err;
    ASSERT_TRUE(p.parse(a.argc(), a.argv(), err));
    EXPECT_FALSE(p.flag("verbose"));
    EXPECT_EQ(p.str("workload"), "swim");
    EXPECT_EQ(p.u64("count"), 100u);
    EXPECT_FALSE(p.given("workload"));
}

TEST(Args, SpaceSeparatedValue)
{
    ArgParser p = makeParser();
    Argv a({"--workload", "mcf"});
    std::ostringstream err;
    ASSERT_TRUE(p.parse(a.argc(), a.argv(), err));
    EXPECT_EQ(p.str("workload"), "mcf");
    EXPECT_TRUE(p.given("workload"));
}

TEST(Args, EqualsValue)
{
    ArgParser p = makeParser();
    Argv a({"--count=42"});
    std::ostringstream err;
    ASSERT_TRUE(p.parse(a.argc(), a.argv(), err));
    EXPECT_EQ(p.u64("count"), 42u);
}

TEST(Args, FlagPresence)
{
    ArgParser p = makeParser();
    Argv a({"--verbose"});
    std::ostringstream err;
    ASSERT_TRUE(p.parse(a.argc(), a.argv(), err));
    EXPECT_TRUE(p.flag("verbose"));
}

TEST(Args, UnknownOptionRejected)
{
    ArgParser p = makeParser();
    Argv a({"--bogus"});
    std::ostringstream err;
    EXPECT_FALSE(p.parse(a.argc(), a.argv(), err));
    EXPECT_NE(err.str().find("unknown option"), std::string::npos);
    EXPECT_FALSE(p.helpRequested());
}

TEST(Args, MissingValueRejected)
{
    ArgParser p = makeParser();
    Argv a({"--workload"});
    std::ostringstream err;
    EXPECT_FALSE(p.parse(a.argc(), a.argv(), err));
    EXPECT_NE(err.str().find("requires a value"), std::string::npos);
}

TEST(Args, FlagWithValueRejected)
{
    ArgParser p = makeParser();
    Argv a({"--verbose=1"});
    std::ostringstream err;
    EXPECT_FALSE(p.parse(a.argc(), a.argv(), err));
    EXPECT_NE(err.str().find("takes no value"), std::string::npos);
}

TEST(Args, HelpRequested)
{
    ArgParser p = makeParser();
    Argv a({"--help"});
    std::ostringstream err;
    EXPECT_FALSE(p.parse(a.argc(), a.argv(), err));
    EXPECT_TRUE(p.helpRequested());
    EXPECT_NE(err.str().find("usage: prog"), std::string::npos);
    EXPECT_NE(err.str().find("--workload"), std::string::npos);
    EXPECT_NE(err.str().find("default: swim"), std::string::npos);
}

TEST(Args, PositionalCollected)
{
    ArgParser p = makeParser();
    Argv a({"one", "--verbose", "two"});
    std::ostringstream err;
    ASSERT_TRUE(p.parse(a.argc(), a.argv(), err));
    ASSERT_EQ(p.positional().size(), 2u);
    EXPECT_EQ(p.positional()[0], "one");
    EXPECT_EQ(p.positional()[1], "two");
}

TEST(ArgsDeath, NonNumericU64Fatal)
{
    ArgParser p = makeParser();
    Argv a({"--count", "abc"});
    std::ostringstream err;
    ASSERT_TRUE(p.parse(a.argc(), a.argv(), err));
    EXPECT_SIM_ERROR(p.u64("count"), bsim::ErrorCategory::Config,
                     "not a number");
}

TEST(ArgsDeath, UndeclaredAccessPanics)
{
    ArgParser p = makeParser();
    EXPECT_DEATH(p.flag("nope"), "not a declared flag");
    EXPECT_DEATH(p.str("nope"), "not a declared option");
}

TEST(Args, LastValueWins)
{
    ArgParser p = makeParser();
    Argv a({"--count=1", "--count=2"});
    std::ostringstream err;
    ASSERT_TRUE(p.parse(a.argc(), a.argv(), err));
    EXPECT_EQ(p.u64("count"), 2u);
}
