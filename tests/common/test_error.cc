/**
 * @file
 * SimError unit tests: category names, transiency policy, describe()
 * rendering and the printf-style throw helper.
 */

#include <gtest/gtest.h>

#include "common/error.hh"

using namespace bsim;

TEST(ErrorCategory, NamesRoundTrip)
{
    const ErrorCategory all[] = {
        ErrorCategory::Config, ErrorCategory::Trace,
        ErrorCategory::Protocol, ErrorCategory::Resource,
        ErrorCategory::Internal, ErrorCategory::WorkerLost};
    for (const ErrorCategory c : all)
        EXPECT_EQ(parseErrorCategory(errorCategoryName(c)), c);
}

TEST(ErrorCategory, ParseRejectsUnknownName)
{
    try {
        parseErrorCategory("flaky");
        FAIL() << "no throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Config);
    }
}

TEST(ErrorCategory, OnlyResourceAndWorkerLostAreTransient)
{
    EXPECT_TRUE(errorCategoryTransient(ErrorCategory::Resource));
    EXPECT_TRUE(errorCategoryTransient(ErrorCategory::WorkerLost));
    EXPECT_FALSE(errorCategoryTransient(ErrorCategory::Config));
    EXPECT_FALSE(errorCategoryTransient(ErrorCategory::Trace));
    EXPECT_FALSE(errorCategoryTransient(ErrorCategory::Protocol));
    EXPECT_FALSE(errorCategoryTransient(ErrorCategory::Internal));
}

TEST(ErrorCategory, WorkerLostNameRoundTrips)
{
    EXPECT_STREQ(errorCategoryName(ErrorCategory::WorkerLost),
                 "worker_lost");
    EXPECT_EQ(parseErrorCategory("worker_lost"),
              ErrorCategory::WorkerLost);
}

TEST(SimError, CarriesCategoryMessageAndContext)
{
    const SimError e(ErrorCategory::Trace, "bad line",
                     "line 3: L xyz");
    EXPECT_EQ(e.category(), ErrorCategory::Trace);
    EXPECT_STREQ(e.what(), "bad line");
    EXPECT_EQ(e.context(), "line 3: L xyz");
}

TEST(SimError, DescribePrefixesCategoryAndAppendsContext)
{
    const SimError plain(ErrorCategory::Config, "oops");
    EXPECT_EQ(plain.describe(), "[config] oops");

    const SimError rich(ErrorCategory::Internal, "hang", "snapshot\nhere");
    const std::string d = rich.describe();
    EXPECT_EQ(d.find("[internal] hang"), 0u);
    EXPECT_NE(d.find("snapshot\nhere"), std::string::npos);
}

TEST(SimError, ThrowHelperFormats)
{
    try {
        throwSimError(ErrorCategory::Resource, "disk %s after %d tries",
                      "full", 3);
        FAIL() << "no throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Resource);
        EXPECT_STREQ(e.what(), "disk full after 3 tries");
        EXPECT_TRUE(e.context().empty());
    }
}
