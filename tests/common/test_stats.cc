/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace bsim;

TEST(RunningMean, EmptyIsZero)
{
    RunningMean m;
    EXPECT_EQ(m.count(), 0u);
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
    EXPECT_DOUBLE_EQ(m.sum(), 0.0);
}

TEST(RunningMean, SingleSample)
{
    RunningMean m;
    m.sample(42.0);
    EXPECT_EQ(m.count(), 1u);
    EXPECT_DOUBLE_EQ(m.mean(), 42.0);
}

TEST(RunningMean, MultipleSamples)
{
    RunningMean m;
    for (int i = 1; i <= 100; ++i)
        m.sample(double(i));
    EXPECT_EQ(m.count(), 100u);
    EXPECT_DOUBLE_EQ(m.mean(), 50.5);
    EXPECT_DOUBLE_EQ(m.sum(), 5050.0);
}

TEST(RunningMean, Reset)
{
    RunningMean m;
    m.sample(1.0);
    m.reset();
    EXPECT_EQ(m.count(), 0u);
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h(10);
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(5), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(0), 0.0);
}

TEST(Histogram, BucketCounts)
{
    Histogram h(10);
    h.sample(3);
    h.sample(3);
    h.sample(7);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.bucket(7), 1u);
    EXPECT_EQ(h.bucket(0), 0u);
    EXPECT_NEAR(h.fraction(3), 2.0 / 3.0, 1e-12);
}

TEST(Histogram, ClampsOverflowIntoLastBucket)
{
    Histogram h(4);
    h.sample(4);
    h.sample(100);
    h.sample(99999);
    EXPECT_EQ(h.bucket(4), 3u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeBucketReadsZero)
{
    Histogram h(4);
    h.sample(1);
    EXPECT_EQ(h.bucket(50), 0u);
}

TEST(Histogram, FractionAtLeast)
{
    Histogram h(10);
    for (std::size_t v : {1u, 2u, 3u, 8u, 9u})
        h.sample(v);
    EXPECT_NEAR(h.fractionAtLeast(8), 0.4, 1e-12);
    EXPECT_NEAR(h.fractionAtLeast(0), 1.0, 1e-12);
    // Beyond the range only the clamped bucket counts.
    EXPECT_NEAR(h.fractionAtLeast(100), 0.0, 1e-12);
}

TEST(Histogram, Mean)
{
    Histogram h(10);
    h.sample(2);
    h.sample(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, Reset)
{
    Histogram h(10);
    h.sample(2);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bucket(2), 0u);
}

TEST(StatGroup, SetGetHas)
{
    StatGroup g("dram");
    EXPECT_FALSE(g.has("x"));
    EXPECT_DOUBLE_EQ(g.get("x"), 0.0);
    g.set("x", 1.5);
    EXPECT_TRUE(g.has("x"));
    EXPECT_DOUBLE_EQ(g.get("x"), 1.5);
    g.set("x", 2.5); // overwrite
    EXPECT_DOUBLE_EQ(g.get("x"), 2.5);
    EXPECT_EQ(g.name(), "dram");
}

TEST(StatGroup, ValuesSortedByKey)
{
    StatGroup g("g");
    g.set("b", 2);
    g.set("a", 1);
    auto it = g.values().begin();
    EXPECT_EQ(it->first, "a");
}

TEST(Ratio, HandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(ratio(5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(5.0, 2.0), 2.5);
}
