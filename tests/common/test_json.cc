/**
 * @file
 * JSON writer tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"

using namespace bsim;

namespace
{

/** Compact (non-pretty) render helper. */
template <typename Fn>
std::string
compact(Fn fn)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty*/ false);
    fn(w);
    return os.str();
}

} // namespace

TEST(Json, EmptyObject)
{
    EXPECT_EQ(compact([](JsonWriter &w) { w.beginObject().endObject(); }),
              "{}");
}

TEST(Json, EmptyArray)
{
    EXPECT_EQ(compact([](JsonWriter &w) { w.beginArray().endArray(); }),
              "[]");
}

TEST(Json, KeyValuePairs)
{
    EXPECT_EQ(compact([](JsonWriter &w) {
                  w.beginObject();
                  w.key("a").value(1);
                  w.key("b").value("x");
                  w.endObject();
              }),
              R"({"a":1,"b":"x"})");
}

TEST(Json, NestedContainers)
{
    EXPECT_EQ(compact([](JsonWriter &w) {
                  w.beginObject();
                  w.key("arr").beginArray().value(1).value(2).endArray();
                  w.key("obj").beginObject().key("k").value(true)
                      .endObject();
                  w.endObject();
              }),
              R"({"arr":[1,2],"obj":{"k":true}})");
}

TEST(Json, ArrayOfValues)
{
    EXPECT_EQ(compact([](JsonWriter &w) {
                  w.beginArray();
                  w.value(std::uint64_t(18446744073709551615ULL));
                  w.value(-3);
                  w.value(false);
                  w.endArray();
              }),
              "[18446744073709551615,-3,false]");
}

TEST(Json, DoubleFormatting)
{
    const std::string out =
        compact([](JsonWriter &w) { w.beginArray().value(0.5).endArray(); });
    EXPECT_EQ(out, "[0.5]");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(compact([](JsonWriter &w) {
                  w.beginArray().value("a\"b\\c\nd\te").endArray();
              }),
              "[\"a\\\"b\\\\c\\nd\\te\"]");
}

TEST(Json, ControlCharacterEscaping)
{
    EXPECT_EQ(compact([](JsonWriter &w) {
                  w.beginArray().value(std::string("\x01")).endArray();
              }),
              "[\"\\u0001\"]");
}

TEST(Json, CompleteTracksBalance)
{
    std::ostringstream os;
    JsonWriter w(os, false);
    EXPECT_FALSE(w.complete());
    w.beginObject();
    EXPECT_FALSE(w.complete());
    w.endObject();
    EXPECT_TRUE(w.complete());
}

TEST(Json, PrettyPrintingIndents)
{
    std::ostringstream os;
    JsonWriter w(os, true);
    w.beginObject();
    w.key("a").value(1);
    w.endObject();
    EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(Json, ScalarRoot)
{
    EXPECT_EQ(compact([](JsonWriter &w) { w.value(42); }), "42");
}

TEST(JsonDeath, MismatchedClosePanics)
{
    std::ostringstream os;
    JsonWriter w(os, false);
    w.beginArray();
    EXPECT_DEATH(w.endObject(), "endObject");
}

TEST(JsonDeath, KeyOutsideObjectPanics)
{
    std::ostringstream os;
    JsonWriter w(os, false);
    EXPECT_DEATH(w.key("k"), "key outside");
}

TEST(JsonDeath, TwoRootsPanic)
{
    std::ostringstream os;
    JsonWriter w(os, false);
    w.value(1);
    EXPECT_DEATH(w.value(2), "root");
}
