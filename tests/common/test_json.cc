/**
 * @file
 * JSON writer tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"

using namespace bsim;

namespace
{

/** Compact (non-pretty) render helper. */
template <typename Fn>
std::string
compact(Fn fn)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty*/ false);
    fn(w);
    return os.str();
}

} // namespace

TEST(Json, EmptyObject)
{
    EXPECT_EQ(compact([](JsonWriter &w) { w.beginObject().endObject(); }),
              "{}");
}

TEST(Json, EmptyArray)
{
    EXPECT_EQ(compact([](JsonWriter &w) { w.beginArray().endArray(); }),
              "[]");
}

TEST(Json, KeyValuePairs)
{
    EXPECT_EQ(compact([](JsonWriter &w) {
                  w.beginObject();
                  w.key("a").value(1);
                  w.key("b").value("x");
                  w.endObject();
              }),
              R"({"a":1,"b":"x"})");
}

TEST(Json, NestedContainers)
{
    EXPECT_EQ(compact([](JsonWriter &w) {
                  w.beginObject();
                  w.key("arr").beginArray().value(1).value(2).endArray();
                  w.key("obj").beginObject().key("k").value(true)
                      .endObject();
                  w.endObject();
              }),
              R"({"arr":[1,2],"obj":{"k":true}})");
}

TEST(Json, ArrayOfValues)
{
    EXPECT_EQ(compact([](JsonWriter &w) {
                  w.beginArray();
                  w.value(std::uint64_t(18446744073709551615ULL));
                  w.value(-3);
                  w.value(false);
                  w.endArray();
              }),
              "[18446744073709551615,-3,false]");
}

TEST(Json, DoubleFormatting)
{
    const std::string out =
        compact([](JsonWriter &w) { w.beginArray().value(0.5).endArray(); });
    EXPECT_EQ(out, "[0.5]");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(compact([](JsonWriter &w) {
                  w.beginArray().value("a\"b\\c\nd\te").endArray();
              }),
              "[\"a\\\"b\\\\c\\nd\\te\"]");
}

TEST(Json, ControlCharacterEscaping)
{
    EXPECT_EQ(compact([](JsonWriter &w) {
                  w.beginArray().value(std::string("\x01")).endArray();
              }),
              "[\"\\u0001\"]");
}

TEST(Json, CompleteTracksBalance)
{
    std::ostringstream os;
    JsonWriter w(os, false);
    EXPECT_FALSE(w.complete());
    w.beginObject();
    EXPECT_FALSE(w.complete());
    w.endObject();
    EXPECT_TRUE(w.complete());
}

TEST(Json, PrettyPrintingIndents)
{
    std::ostringstream os;
    JsonWriter w(os, true);
    w.beginObject();
    w.key("a").value(1);
    w.endObject();
    EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(Json, ScalarRoot)
{
    EXPECT_EQ(compact([](JsonWriter &w) { w.value(42); }), "42");
}

TEST(JsonDeath, MismatchedClosePanics)
{
    std::ostringstream os;
    JsonWriter w(os, false);
    w.beginArray();
    EXPECT_DEATH(w.endObject(), "endObject");
}

TEST(JsonDeath, KeyOutsideObjectPanics)
{
    std::ostringstream os;
    JsonWriter w(os, false);
    EXPECT_DEATH(w.key("k"), "key outside");
}

TEST(JsonDeath, TwoRootsPanic)
{
    std::ostringstream os;
    JsonWriter w(os, false);
    w.value(1);
    EXPECT_DEATH(w.value(2), "root");
}

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(parseJson("null")->isNull());
    EXPECT_EQ(parseJson("true")->boolean, true);
    EXPECT_EQ(parseJson("false")->boolean, false);
    EXPECT_DOUBLE_EQ(parseJson("42")->number, 42.0);
    EXPECT_DOUBLE_EQ(parseJson("-1.5e3")->number, -1500.0);
    EXPECT_EQ(parseJson(R"("hi")")->string, "hi");
}

TEST(JsonParse, StringEscapes)
{
    const auto v = parseJson(R"("a\"b\\c\nd\teA")");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->string, "a\"b\\c\nd\teA");
}

TEST(JsonParse, NestedContainers)
{
    const auto v =
        parseJson(R"({"arr":[1,2,3],"obj":{"k":true},"s":"x"})");
    ASSERT_TRUE(v.has_value());
    ASSERT_TRUE(v->isObject());
    const JsonValue *arr = v->find("arr");
    ASSERT_NE(arr, nullptr);
    ASSERT_EQ(arr->size(), 3u);
    EXPECT_DOUBLE_EQ(arr->array[1].number, 2.0);
    const JsonValue *obj = v->find("obj");
    ASSERT_NE(obj, nullptr);
    EXPECT_EQ(obj->find("k")->boolean, true);
    EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonParse, PreservesMemberOrder)
{
    const auto v = parseJson(R"({"z":1,"a":2,"m":3})");
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(v->members.size(), 3u);
    EXPECT_EQ(v->members[0].first, "z");
    EXPECT_EQ(v->members[1].first, "a");
    EXPECT_EQ(v->members[2].first, "m");
}

TEST(JsonParse, RejectsMalformed)
{
    std::string err;
    EXPECT_FALSE(parseJson("{", &err).has_value());
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(parseJson("[1,]").has_value());
    EXPECT_FALSE(parseJson(R"({"a" 1})").has_value());
    EXPECT_FALSE(parseJson("1 2").has_value()); // trailing garbage
    EXPECT_FALSE(parseJson("").has_value());
    EXPECT_FALSE(parseJson("nul").has_value());
}

TEST(JsonParse, RoundTripsWriterOutput)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty*/ true);
    w.beginObject();
    w.key("n").value(-7);
    w.key("f").value(0.25);
    w.key("s").value("quote \" and \\ tab\t");
    w.key("arr").beginArray().value(1).value(true).endArray();
    w.endObject();

    const auto v = parseJson(os.str());
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(v->find("n")->number, -7.0);
    EXPECT_DOUBLE_EQ(v->find("f")->number, 0.25);
    EXPECT_EQ(v->find("s")->string, "quote \" and \\ tab\t");
    EXPECT_EQ(v->find("arr")->array[1].boolean, true);
}
