/**
 * @file
 * Tests for the text/CSV table renderer used by the bench harness.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

using namespace bsim;

TEST(Table, AlignsColumns)
{
    Table t;
    t.header({"a", "long-header"});
    t.row({"value", "x"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("a      long-header"), std::string::npos);
    EXPECT_NE(out.find("value  x"), std::string::npos);
}

TEST(Table, CaptionPrintedFirst)
{
    Table t("my caption");
    t.header({"h"});
    std::ostringstream os;
    t.print(os);
    EXPECT_EQ(os.str().rfind("my caption", 0), 0u);
}

TEST(Table, CsvRoundTrip)
{
    Table t;
    t.header({"x", "y"});
    t.row({"1", "2"});
    t.row({"3", "4"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(Table, CsvQuotesCommas)
{
    Table t;
    t.header({"x"});
    t.row({"a,b"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x\n\"a,b\"\n");
}

TEST(Table, RowsCount)
{
    Table t;
    EXPECT_EQ(t.rows(), 0u);
    t.row({"a"});
    t.row({"b"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, PctFormatting)
{
    EXPECT_EQ(Table::pct(0.421, 1), "42.1%");
    EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, RaggedRowsDoNotCrash)
{
    Table t;
    t.header({"a", "b", "c"});
    t.row({"1"});
    t.row({"1", "2", "3", "4"});
    std::ostringstream os;
    t.print(os);
    EXPECT_FALSE(os.str().empty());
}
