/**
 * @file
 * Shared harness for driving scheduler policies directly (bypassing the
 * controller) so tests can inspect individual transaction decisions.
 */

#ifndef BURSTSIM_TESTS_CTRL_SCHED_TEST_UTIL_HH
#define BURSTSIM_TESTS_CTRL_SCHED_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ctrl/controller.hh"
#include "ctrl/schedulers/factory.hh"
#include "dram/memory_system.hh"

namespace schedtest
{

using namespace bsim;

/** A small single-channel machine: 1 channel x 2 ranks x 2 banks. */
inline dram::DramConfig
smallDram()
{
    dram::DramConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 2;
    cfg.banksPerRank = 2;
    cfg.rowsPerBank = 64;
    cfg.blocksPerRow = 32;
    cfg.timing = dram::Timing::ddr2_800();
    cfg.timing.tREFI = 0; // tests drive refresh explicitly if at all
    return cfg;
}

/** Owns a memory system + one scheduler and fabricates accesses. */
class Harness
{
  public:
    explicit Harness(ctrl::Mechanism mech,
                     dram::DramConfig dcfg = smallDram(),
                     ctrl::SchedulerParams params = {})
        : mem_(dcfg)
    {
        ctrl::SchedulerContext ctx;
        ctx.mem = &mem_;
        ctx.channel = 0;
        ctx.global = &counts_;
        ctx.params = params;
        // Mechanism-derived flags, as the controller would set them.
        ctrl::ControllerConfig ccfg;
        ccfg.mechanism = mech;
        ccfg.threshold = params.threshold;
        ccfg.writeCap = params.writeCap;
        ctx.params = ccfg.schedulerParams();
        if (mech == ctrl::Mechanism::BurstTH)
            ctx.params.threshold = params.threshold;
        ctx.params.dynamicThreshold = params.dynamicThreshold;
        ctx.params.sortBurstsBySize = params.sortBurstsBySize;
        ctx.params.criticalFirst = params.criticalFirst;
        ctx.params.rankAware = params.rankAware;
        // Contention-zoo knobs (defaults match SchedulerParams, so
        // tests that do not set them are unaffected).
        ctx.params.watermarkDrain = params.watermarkDrain;
        ctx.params.hiWatermark = params.hiWatermark;
        ctx.params.loWatermark = params.loWatermark;
        ctx.params.drainTurnaround = params.drainTurnaround;
        ctx.params.parbsMarkingCap = params.parbsMarkingCap;
        ctx.params.atlasQuantum = params.atlasQuantum;
        ctx.params.blissThreshold = params.blissThreshold;
        ctx.params.blissClearInterval = params.blissClearInterval;
        sched_ = ctrl::makeScheduler(mech, ctx);
    }

    /** Create and enqueue an access at explicit coordinates. The tag
     *  is the requester (CMP core) identity the contention-aware
     *  families rank on. */
    ctrl::MemAccess *
    add(AccessType type, std::uint32_t rank, std::uint32_t bank,
        std::uint32_t row, std::uint32_t col, Tick arrival = 0,
        std::uint64_t tag = 0)
    {
        auto a = std::make_unique<ctrl::MemAccess>();
        a->id = nextId_++;
        a->type = type;
        a->coords = dram::Coords{0, rank, bank, row, col};
        a->addr = mem_.addressMap().encode(a->coords);
        a->arrival = arrival;
        a->tag = tag;
        ctrl::MemAccess *p = a.get();
        own_.push_back(std::move(a));
        if (type == AccessType::Write)
            counts_.writesOutstanding += 1;
        else
            counts_.readsOutstanding += 1;
        sched_->enqueue(p);
        return p;
    }

    /** Create and enqueue a critical read (dependence-chain fill). */
    ctrl::MemAccess *
    addCritical(std::uint32_t rank, std::uint32_t bank, std::uint32_t row,
                std::uint32_t col, Tick arrival = 0)
    {
        auto a = std::make_unique<ctrl::MemAccess>();
        a->id = nextId_++;
        a->type = AccessType::Read;
        a->coords = dram::Coords{0, rank, bank, row, col};
        a->addr = mem_.addressMap().encode(a->coords);
        a->arrival = arrival;
        a->critical = true;
        ctrl::MemAccess *p = a.get();
        own_.push_back(std::move(a));
        counts_.readsOutstanding += 1;
        sched_->enqueue(p);
        return p;
    }

    /** Tick once; updates global counts on column issue. */
    ctrl::Scheduler::Issued
    tick(Tick now)
    {
        auto issued = sched_->tick(now);
        if (issued.columnAccess) {
            if (issued.access->isWrite())
                counts_.writesOutstanding -= 1;
            else
                counts_.readsOutstanding -= 1;
        }
        return issued;
    }

    /**
     * Run until all enqueued work completed (column accesses issued);
     * returns the column-access issue order. Asserts progress.
     */
    std::vector<ctrl::MemAccess *>
    drain(Tick &now, Tick max_ticks = 100000)
    {
        std::vector<ctrl::MemAccess *> order;
        const Tick limit = now + max_ticks;
        while (sched_->hasWork() && now < limit) {
            auto issued = tick(now);
            if (issued.columnAccess)
                order.push_back(issued.access);
            ++now;
        }
        EXPECT_FALSE(sched_->hasWork()) << "scheduler failed to drain";
        return order;
    }

    ctrl::Scheduler &sched() { return *sched_; }
    dram::MemorySystem &mem() { return mem_; }
    ctrl::GlobalCounts &counts() { return counts_; }

  private:
    dram::MemorySystem mem_;
    ctrl::GlobalCounts counts_;
    std::unique_ptr<ctrl::Scheduler> sched_;
    std::vector<std::unique_ptr<ctrl::MemAccess>> own_;
    std::uint64_t nextId_ = 1;
};

} // namespace schedtest

#endif // BURSTSIM_TESTS_CTRL_SCHED_TEST_UTIL_HH
