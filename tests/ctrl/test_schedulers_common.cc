/**
 * @file
 * Property-style tests that every mechanism of Table 4 must satisfy,
 * parameterized over all eight (TEST_P): completion, conservation,
 * capacity limits, hazard ordering of same-block accesses, determinism
 * and stat sanity.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "ctrl/controller.hh"
#include "dram/memory_system.hh"

using namespace bsim;

namespace
{

dram::DramConfig
smallDram()
{
    dram::DramConfig cfg;
    cfg.channels = 2;
    cfg.ranksPerChannel = 2;
    cfg.banksPerRank = 2;
    cfg.rowsPerBank = 32;
    cfg.blocksPerRow = 16;
    cfg.timing = dram::Timing::ddr2_800();
    return cfg;
}

/** Drives a controller with a reproducible random access pattern. */
struct Driver
{
    explicit Driver(ctrl::Mechanism mech, std::uint64_t seed = 99)
        : mem(smallDram()), rng(seed)
    {
        ctrl::ControllerConfig cfg;
        cfg.mechanism = mech;
        cfg.poolCap = 32;
        cfg.writeCap = 8;
        controller = std::make_unique<ctrl::MemoryController>(mem, cfg);
        controller->setReadCallback(
            [this](const ctrl::MemAccess &a, Tick at) {
                responses.emplace_back(a.id, at);
            });
    }

    Addr
    randomBlock()
    {
        // Small footprint so same-block collisions actually happen.
        return (rng.below(64)) * 64;
    }

    /** Submit @p n random accesses while ticking; then drain. */
    void
    run(std::uint64_t n, double write_frac = 0.35)
    {
        std::uint64_t submitted = 0;
        std::uint64_t guard = 0;
        while (submitted < n || controller->busy()) {
            ASSERT_LT(guard++, 400000u) << "no forward progress";
            while (submitted < n && controller->canAccept() &&
                   rng.chance(0.7)) {
                const bool w = rng.chance(write_frac);
                const Addr a = randomBlock();
                const auto id = controller->submit(
                    w ? AccessType::Write : AccessType::Read, a, now);
                if (w)
                    writesSubmitted += 1;
                else
                    readsSubmitted.push_back(id);
                submitted += 1;
            }
            maxWritesSeen = std::max(maxWritesSeen,
                                     controller->writesOutstanding());
            controller->tick(now++);
        }
    }

    dram::MemorySystem mem;
    std::unique_ptr<ctrl::MemoryController> controller;
    Rng rng;
    Tick now = 0;
    std::vector<std::uint64_t> readsSubmitted;
    std::uint64_t writesSubmitted = 0;
    std::size_t maxWritesSeen = 0;
    std::vector<std::pair<std::uint64_t, Tick>> responses;
};

} // namespace

class AllMechanisms : public testing::TestWithParam<ctrl::Mechanism>
{
};

TEST_P(AllMechanisms, EveryReadGetsExactlyOneResponse)
{
    Driver d(GetParam());
    d.run(300);
    EXPECT_EQ(d.responses.size(), d.readsSubmitted.size());
    std::map<std::uint64_t, int> seen;
    for (const auto &[id, at] : d.responses)
        seen[id] += 1;
    for (const auto id : d.readsSubmitted) {
        EXPECT_EQ(seen[id], 1) << "read " << id;
    }
}

TEST_P(AllMechanisms, AllWritesReachDram)
{
    Driver d(GetParam());
    d.run(300);
    const auto &st = d.controller->stats();
    // Every submitted write eventually transferred (none forwarded away).
    EXPECT_EQ(st.writes, d.writesSubmitted);
    EXPECT_EQ(d.controller->writesOutstanding(), 0u);
}

TEST_P(AllMechanisms, WriteCapNeverExceeded)
{
    Driver d(GetParam());
    d.run(300);
    EXPECT_LE(d.maxWritesSeen, 8u);
}

TEST_P(AllMechanisms, ResponsesNeverBeforeMinimumLatency)
{
    Driver d(GetParam());
    d.run(200);
    // No DRAM read can complete faster than tCL + transfer; forwarded
    // reads can be faster but never instant.
    for (const auto &[id, at] : d.responses)
        EXPECT_GT(at, 0u);
}

TEST_P(AllMechanisms, DeterministicForSeed)
{
    Driver a(GetParam(), 1234), b(GetParam(), 1234);
    a.run(250);
    b.run(250);
    ASSERT_EQ(a.responses.size(), b.responses.size());
    for (std::size_t i = 0; i < a.responses.size(); ++i) {
        EXPECT_EQ(a.responses[i].first, b.responses[i].first);
        EXPECT_EQ(a.responses[i].second, b.responses[i].second);
    }
    EXPECT_EQ(a.now, b.now);
}

TEST_P(AllMechanisms, RowRatesSumToOne)
{
    Driver d(GetParam());
    d.run(300);
    const auto &st = d.controller->stats();
    const double sum =
        st.rowHitRate() + st.rowConflictRate() + st.rowEmptyRate();
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(AllMechanisms, LatencyStatsPopulated)
{
    Driver d(GetParam());
    d.run(300);
    const auto &st = d.controller->stats();
    EXPECT_GT(st.readLatency.mean(), 0.0);
    EXPECT_GT(st.writeLatency.mean(), 0.0);
    EXPECT_GT(st.bytesTransferred, 0u);
}

TEST_P(AllMechanisms, SameBlockWriteOrderPreserved)
{
    // WAW hazard check on data: two writes to one block in program
    // order; the store must end with the second value.
    Driver d(GetParam());
    std::vector<std::uint8_t> v1(64, 0xaa), v2(64, 0xbb);
    const Addr target = 0;
    d.controller->submit(AccessType::Write, target, d.now, v1.data());
    // Interleave unrelated traffic.
    for (int i = 0; i < 6; ++i)
        d.controller->submit(AccessType::Read, Addr(64 * (i + 1)), d.now);
    d.controller->submit(AccessType::Write, target, d.now, v2.data());
    std::uint64_t guard = 0;
    while (d.controller->busy()) {
        ASSERT_LT(guard++, 100000u);
        d.controller->tick(d.now++);
    }
    std::uint8_t out[64];
    d.mem.store().read(target, out);
    EXPECT_EQ(out[0], 0xbb);
}

TEST_P(AllMechanisms, ReadAfterWriteForwardsQuickly)
{
    // RAW hazard check: a read behind a queued write to the same block
    // must be forwarded (Figure 4) under every mechanism.
    Driver d(GetParam());
    d.controller->submit(AccessType::Write, 0, d.now);
    d.controller->submit(AccessType::Read, 0, d.now);
    std::uint64_t guard = 0;
    while (d.controller->busy()) {
        ASSERT_LT(guard++, 100000u);
        d.controller->tick(d.now++);
    }
    EXPECT_EQ(d.controller->stats().forwardedReads, 1u);
}

TEST_P(AllMechanisms, HeavyWriteBurstDoesNotDeadlock)
{
    Driver d(GetParam());
    d.run(300, /*write_frac*/ 0.9);
    EXPECT_EQ(d.controller->writesOutstanding(), 0u);
    EXPECT_FALSE(d.controller->busy());
}

TEST_P(AllMechanisms, ReadOnlyStreamCompletes)
{
    Driver d(GetParam());
    d.run(300, /*write_frac*/ 0.0);
    EXPECT_EQ(d.responses.size(), d.readsSubmitted.size());
}

INSTANTIATE_TEST_SUITE_P(
    Table4, AllMechanisms,
    testing::Values(ctrl::Mechanism::BkInOrder, ctrl::Mechanism::RowHit,
                    ctrl::Mechanism::Intel, ctrl::Mechanism::IntelRP,
                    ctrl::Mechanism::Burst, ctrl::Mechanism::BurstRP,
                    ctrl::Mechanism::BurstWP, ctrl::Mechanism::BurstTH),
    [](const auto &info) {
        return std::string(ctrl::mechanismName(info.param));
    });

TEST_P(AllMechanisms, ServiceLatencyIsBounded)
{
    // Starvation-freedom: under sustained random load, no access waits
    // pathologically long. The bound is loose (a full drain of the pool
    // plus slack) but catches livelock and forgotten-queue bugs.
    Driver d(GetParam());
    Tick worst = 0;
    std::map<std::uint64_t, Tick> submit_at;
    // Re-run the standard load, recording latencies via responses.
    std::uint64_t submitted = 0, guard = 0;
    while (submitted < 400 || d.controller->busy()) {
        ASSERT_LT(guard++, 500000u);
        while (submitted < 400 && d.controller->canAccept() &&
               d.rng.chance(0.7)) {
            const bool w = d.rng.chance(0.35);
            const auto id = d.controller->submit(
                w ? AccessType::Write : AccessType::Read,
                d.randomBlock(), d.now);
            submit_at[id] = d.now;
            submitted += 1;
        }
        d.controller->tick(d.now++);
    }
    for (const auto &[id, at] : d.responses) {
        ASSERT_TRUE(submit_at.count(id));
        worst = std::max(worst, at - submit_at[id]);
    }
    EXPECT_LT(worst, 20000u) << "suspiciously long service latency";
}
