/**
 * @file
 * Memory controller tests: admission rules (pool and write-queue caps),
 * write-queue read forwarding, the refresh engine, response routing and
 * statistics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ctrl/controller.hh"
#include "dram/memory_system.hh"

#include "sim_error_util.hh"

using namespace bsim;

namespace
{

dram::DramConfig
smallDram(bool refresh = false)
{
    dram::DramConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 2;
    cfg.banksPerRank = 2;
    cfg.rowsPerBank = 64;
    cfg.blocksPerRow = 32;
    cfg.timing = dram::Timing::ddr2_800();
    if (!refresh)
        cfg.timing.tREFI = 0;
    return cfg;
}

struct Fixture
{
    explicit Fixture(ctrl::Mechanism mech = ctrl::Mechanism::BurstTH,
                     std::size_t pool = 8, std::size_t wcap = 4,
                     bool refresh = false)
        : mem(smallDram(refresh))
    {
        ctrl::ControllerConfig cfg;
        cfg.mechanism = mech;
        cfg.poolCap = pool;
        cfg.writeCap = wcap;
        controller = std::make_unique<ctrl::MemoryController>(mem, cfg);
        controller->setReadCallback(
            [this](const ctrl::MemAccess &a, Tick at) {
                completions.emplace_back(a.id, at);
            });
    }

    /** Encode distinct block addresses per index. */
    Addr
    blockAddr(std::uint32_t i) const
    {
        dram::Coords c{0, 0, i % 2, (i / 4) % 64, i % 32};
        return mem.addressMap().encode(c);
    }

    void
    runTicks(std::uint64_t n)
    {
        for (std::uint64_t i = 0; i < n; ++i)
            controller->tick(now++);
    }

    void
    drain(std::uint64_t max = 100000)
    {
        std::uint64_t spent = 0;
        while (controller->busy() && spent++ < max)
            controller->tick(now++);
        ASSERT_FALSE(controller->busy()) << "controller failed to drain";
    }

    dram::MemorySystem mem;
    std::unique_ptr<ctrl::MemoryController> controller;
    std::vector<std::pair<std::uint64_t, Tick>> completions;
    Tick now = 0;
};

} // namespace

TEST(Controller, ReadCompletesWithCallback)
{
    Fixture f;
    const auto id = f.controller->submit(AccessType::Read, f.blockAddr(0),
                                         f.now);
    f.drain();
    ASSERT_EQ(f.completions.size(), 1u);
    EXPECT_EQ(f.completions[0].first, id);
    EXPECT_EQ(f.controller->stats().reads, 1u);
    // Idle-system read: activate + tRCD + tCL + data.
    const auto &t = f.mem.timing();
    EXPECT_GE(f.completions[0].second, t.tRCD + t.tCL + t.dataCycles());
}

TEST(Controller, WriteAckImmediateButDataGoesToDram)
{
    Fixture f;
    f.controller->submit(AccessType::Write, f.blockAddr(0), f.now);
    EXPECT_TRUE(f.controller->busy());
    EXPECT_EQ(f.controller->writesOutstanding(), 1u);
    f.drain();
    EXPECT_EQ(f.controller->stats().writes, 1u);
    EXPECT_GT(f.controller->stats().writeLatency.mean(), 0.0);
    EXPECT_TRUE(f.completions.empty()); // no read callback for writes
}

TEST(Controller, PoolCapBlocksAdmission)
{
    Fixture f(ctrl::Mechanism::BurstTH, /*pool*/ 4, /*wcap*/ 4);
    for (std::uint32_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(f.controller->canAccept());
        f.controller->submit(AccessType::Read, f.blockAddr(i), f.now);
    }
    EXPECT_FALSE(f.controller->canAccept());
    f.drain();
    EXPECT_TRUE(f.controller->canAccept());
}

TEST(Controller, FullWriteQueueBlocksAllAdmission)
{
    // Section 3.2: a saturated write queue blocks reads too.
    Fixture f(ctrl::Mechanism::BurstTH, /*pool*/ 16, /*wcap*/ 2);
    f.controller->submit(AccessType::Write, f.blockAddr(0), f.now);
    EXPECT_TRUE(f.controller->canAccept());
    f.controller->submit(AccessType::Write, f.blockAddr(4), f.now);
    EXPECT_FALSE(f.controller->canAccept()) << "write cap reached";
    f.drain();
    EXPECT_TRUE(f.controller->canAccept());
}

TEST(ControllerDeath, SubmitWhileBlockedPanics)
{
    Fixture f(ctrl::Mechanism::BurstTH, /*pool*/ 1, /*wcap*/ 1);
    f.controller->submit(AccessType::Read, f.blockAddr(0), f.now);
    EXPECT_DEATH(
        f.controller->submit(AccessType::Read, f.blockAddr(1), f.now),
        "cannot accept");
}

TEST(Controller, WriteQueueHitForwardsRead)
{
    Fixture f;
    f.controller->submit(AccessType::Write, f.blockAddr(0), f.now);
    const auto rid = f.controller->submit(AccessType::Read, f.blockAddr(0),
                                          f.now);
    f.runTicks(4);
    // The read completed at forwarding latency, long before any DRAM
    // access could have finished.
    ASSERT_EQ(f.completions.size(), 1u);
    EXPECT_EQ(f.completions[0].first, rid);
    EXPECT_LE(f.completions[0].second, f.now);
    EXPECT_EQ(f.controller->stats().forwardedReads, 1u);
    f.drain();
    EXPECT_EQ(f.controller->stats().forwardedReads, 1u);
}

TEST(Controller, ForwardedReadUsesLatestWriteData)
{
    Fixture f;
    std::vector<std::uint8_t> v1(64, 0x11), v2(64, 0x22);
    f.controller->submit(AccessType::Write, f.blockAddr(0), f.now,
                         v1.data());
    f.controller->submit(AccessType::Write, f.blockAddr(0), f.now,
                         v2.data());
    f.drain();
    std::uint8_t out[64];
    f.mem.store().read(f.blockAddr(0), out);
    EXPECT_EQ(out[0], 0x22);
}

TEST(Controller, ReadToDifferentBlockNotForwarded)
{
    Fixture f;
    f.controller->submit(AccessType::Write, f.blockAddr(0), f.now);
    f.controller->submit(AccessType::Read, f.blockAddr(1), f.now);
    f.runTicks(4);
    EXPECT_TRUE(f.completions.empty());
    f.drain();
    EXPECT_EQ(f.controller->stats().forwardedReads, 0u);
}

TEST(Controller, RowOutcomesCounted)
{
    Fixture f;
    // Same row twice: one empty + one hit. Then a conflict.
    f.controller->submit(AccessType::Read, f.blockAddr(0), f.now);
    f.drain();
    f.controller->submit(AccessType::Read,
                         f.blockAddr(1) /* same row, other bank? no: */,
                         f.now);
    f.drain();
    const auto &st = f.controller->stats();
    EXPECT_EQ(st.rowHits + st.rowEmpties + st.rowConflicts, 2u);
    EXPECT_GE(st.rowEmpties, 1u);
}

TEST(Controller, OccupancySampledPerTick)
{
    Fixture f;
    f.runTicks(10);
    EXPECT_EQ(f.controller->stats().outstandingReads.total(), 10u);
    EXPECT_EQ(f.controller->stats().ticks, 10u);
}

TEST(Controller, SaturationCounted)
{
    Fixture f(ctrl::Mechanism::Burst, 16, /*wcap*/ 1);
    f.controller->submit(AccessType::Write, f.blockAddr(0), f.now);
    // One tick with a saturated queue before the write drains.
    f.controller->tick(f.now++);
    EXPECT_GE(f.controller->stats().writeSatTicks, 1u);
    f.drain();
    EXPECT_GT(f.controller->stats().writeSaturationRate(), 0.0);
}

TEST(Controller, RefreshEngineIssuesRefreshes)
{
    Fixture f(ctrl::Mechanism::BurstTH, 8, 4, /*refresh*/ true);
    const auto trefi = f.mem.timing().tREFI;
    f.runTicks(trefi * 3);
    // 2 ranks, ~3 intervals: several refreshes must have happened.
    EXPECT_GE(f.controller->stats().refreshes, 3u);
}

TEST(Controller, RefreshClosesOpenRows)
{
    Fixture f(ctrl::Mechanism::BurstTH, 8, 4, /*refresh*/ true);
    f.controller->submit(AccessType::Read, f.blockAddr(0), f.now);
    f.drain();
    const dram::Coords c = f.mem.addressMap().decode(f.blockAddr(0));
    EXPECT_TRUE(f.mem.bank(c).isOpen());
    f.runTicks(f.mem.timing().tREFI + 200);
    EXPECT_FALSE(f.mem.bank(c).isOpen());
    EXPECT_GE(f.controller->stats().refreshes, 1u);
}

TEST(Controller, BytesTransferredAccumulate)
{
    Fixture f;
    f.controller->submit(AccessType::Read, f.blockAddr(0), f.now);
    f.controller->submit(AccessType::Write, f.blockAddr(4), f.now);
    f.drain();
    EXPECT_EQ(f.controller->stats().bytesTransferred, 128u);
}

TEST(Controller, ForwardedReadMovesNoDramBytes)
{
    Fixture f;
    f.controller->submit(AccessType::Write, f.blockAddr(0), f.now);
    f.controller->submit(AccessType::Read, f.blockAddr(0), f.now);
    f.drain();
    // Only the write transferred on the DRAM bus.
    EXPECT_EQ(f.controller->stats().bytesTransferred, 64u);
}

TEST(Controller, SchedulerStatsMerged)
{
    Fixture f(ctrl::Mechanism::BurstTH);
    f.controller->submit(AccessType::Read, f.blockAddr(0), f.now);
    f.drain();
    const auto stats = f.controller->schedulerStats();
    EXPECT_TRUE(stats.count("bursts_formed"));
    EXPECT_GE(stats.at("bursts_formed"), 1.0);
}

TEST(ControllerConfig, MechanismParamDerivation)
{
    ctrl::ControllerConfig cfg;
    cfg.threshold = 52;
    cfg.writeCap = 64;

    cfg.mechanism = ctrl::Mechanism::Burst;
    auto p = cfg.schedulerParams();
    EXPECT_FALSE(p.readPreemption);
    EXPECT_FALSE(p.writePiggyback);

    cfg.mechanism = ctrl::Mechanism::BurstRP;
    p = cfg.schedulerParams();
    EXPECT_TRUE(p.readPreemption);
    EXPECT_FALSE(p.writePiggyback);
    EXPECT_EQ(p.threshold, 64u); // RP == TH64

    cfg.mechanism = ctrl::Mechanism::BurstWP;
    p = cfg.schedulerParams();
    EXPECT_FALSE(p.readPreemption);
    EXPECT_TRUE(p.writePiggyback);
    EXPECT_EQ(p.threshold, 0u); // WP == TH0

    cfg.mechanism = ctrl::Mechanism::BurstTH;
    p = cfg.schedulerParams();
    EXPECT_TRUE(p.readPreemption);
    EXPECT_TRUE(p.writePiggyback);
    EXPECT_EQ(p.threshold, 52u);
}

TEST(ControllerDeath, WriteCapAbovePoolRejected)
{
    dram::MemorySystem mem(smallDram());
    ctrl::ControllerConfig cfg;
    cfg.poolCap = 4;
    cfg.writeCap = 8;
    EXPECT_SIM_ERROR(ctrl::MemoryController(mem, cfg), bsim::ErrorCategory::Config,
                     "writeCap");
}

TEST(Controller, MechanismNamesRoundTrip)
{
    for (auto m : ctrl::kAllMechanisms)
        EXPECT_EQ(ctrl::parseMechanism(ctrl::mechanismName(m)), m);
}

TEST(ControllerDeath, UnknownMechanismNameFatal)
{
    EXPECT_SIM_ERROR(ctrl::parseMechanism("NotAMechanism"), bsim::ErrorCategory::Config,
                     "unknown mechanism");
}

TEST(Controller, WriteCoalescingMergesDuplicates)
{
    dram::MemorySystem mem(smallDram());
    ctrl::ControllerConfig cfg;
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.poolCap = 8;
    cfg.writeCap = 4;
    cfg.coalesceWrites = true;
    ctrl::MemoryController controller(mem, cfg);

    std::vector<std::uint8_t> v1(64, 0x11), v2(64, 0x22);
    Tick now = 0;
    controller.submit(AccessType::Write, 0, now, v1.data());
    controller.submit(AccessType::Write, 0, now, v2.data());
    EXPECT_EQ(controller.writesOutstanding(), 1u);
    EXPECT_EQ(controller.stats().coalescedWrites, 1u);
    while (controller.busy())
        controller.tick(now++);
    // Exactly one DRAM write happened, carrying the newest data.
    EXPECT_EQ(controller.stats().writes, 1u);
    std::uint8_t out[64];
    mem.store().read(0, out);
    EXPECT_EQ(out[0], 0x22);
}

TEST(Controller, CoalescingOffKeepsDuplicates)
{
    dram::MemorySystem mem(smallDram());
    ctrl::ControllerConfig cfg;
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.poolCap = 8;
    cfg.writeCap = 4;
    ctrl::MemoryController controller(mem, cfg);
    Tick now = 0;
    controller.submit(AccessType::Write, 0, now);
    controller.submit(AccessType::Write, 0, now);
    EXPECT_EQ(controller.writesOutstanding(), 2u);
    while (controller.busy())
        controller.tick(now++);
    EXPECT_EQ(controller.stats().writes, 2u);
    EXPECT_EQ(controller.stats().coalescedWrites, 0u);
}

TEST(Controller, CoalescedReadStillForwardsLatestData)
{
    dram::MemorySystem mem(smallDram());
    ctrl::ControllerConfig cfg;
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.poolCap = 8;
    cfg.writeCap = 4;
    cfg.coalesceWrites = true;
    ctrl::MemoryController controller(mem, cfg);
    std::uint64_t forwarded_id = 0;
    controller.setReadCallback(
        [&](const ctrl::MemAccess &a, Tick) { forwarded_id = a.id; });

    std::vector<std::uint8_t> v1(64, 0x11), v2(64, 0x22);
    Tick now = 0;
    controller.submit(AccessType::Write, 0, now, v1.data());
    controller.submit(AccessType::Write, 0, now, v2.data());
    const auto rid = controller.submit(AccessType::Read, 0, now);
    while (controller.busy())
        controller.tick(now++);
    EXPECT_EQ(forwarded_id, rid);
    EXPECT_EQ(controller.stats().forwardedReads, 1u);
    std::uint8_t out[64];
    mem.store().read(0, out);
    EXPECT_EQ(out[0], 0x22);
}
