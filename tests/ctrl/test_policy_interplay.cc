/**
 * @file
 * Interplay tests between scheduling mechanisms and the device-side
 * policies that can change bank state underneath them: auto refresh
 * (closes rows mid-burst) and close-page-autoprecharge (no row ever
 * stays open, so bursts degenerate and piggybacking never qualifies).
 * Every mechanism must stay correct — these paths are where schedulers
 * with cached assumptions about bank state break.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "ctrl/controller.hh"
#include "dram/memory_system.hh"

using namespace bsim;

namespace
{

dram::DramConfig
smallDram(dram::PagePolicy policy, bool fast_refresh)
{
    dram::DramConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 2;
    cfg.banksPerRank = 2;
    cfg.rowsPerBank = 32;
    cfg.blocksPerRow = 16;
    cfg.timing = dram::Timing::ddr2_800();
    cfg.pagePolicy = policy;
    if (fast_refresh) {
        // Absurdly frequent refresh: every burst gets interrupted.
        cfg.timing.tREFI = cfg.timing.tRFC + 60;
    }
    return cfg;
}

struct Driver
{
    Driver(ctrl::Mechanism mech, dram::PagePolicy policy,
           bool fast_refresh)
        : mem(smallDram(policy, fast_refresh))
    {
        ctrl::ControllerConfig cfg;
        cfg.mechanism = mech;
        cfg.poolCap = 24;
        cfg.writeCap = 6;
        controller = std::make_unique<ctrl::MemoryController>(mem, cfg);
        controller->setReadCallback(
            [this](const ctrl::MemAccess &, Tick) { responses += 1; });
    }

    void
    run(std::uint64_t n)
    {
        Rng rng(31);
        std::uint64_t submitted = 0, guard = 0;
        while (submitted < n || controller->busy()) {
            ASSERT_LT(guard++, 600000u) << "no forward progress";
            while (submitted < n && controller->canAccept() &&
                   rng.chance(0.6)) {
                const bool w = rng.chance(0.35);
                reads += !w;
                controller->submit(w ? AccessType::Write
                                     : AccessType::Read,
                                   rng.below(128) * 64, now);
                submitted += 1;
            }
            controller->tick(now++);
        }
    }

    dram::MemorySystem mem;
    std::unique_ptr<ctrl::MemoryController> controller;
    Tick now = 0;
    std::uint64_t responses = 0;
    std::uint64_t reads = 0;
};

} // namespace

class PolicyInterplay : public testing::TestWithParam<ctrl::Mechanism>
{
};

TEST_P(PolicyInterplay, SurvivesAggressiveRefresh)
{
    Driver d(GetParam(), dram::PagePolicy::OpenPage,
             /*fast_refresh*/ true);
    d.run(400);
    EXPECT_EQ(d.responses, d.reads);
    EXPECT_GT(d.controller->stats().refreshes, 5u);
    // Refresh-closed banks make accesses row empties; some must appear.
    EXPECT_GT(d.controller->stats().rowEmpties, 0u);
}

TEST_P(PolicyInterplay, WorksUnderClosePageAutoprecharge)
{
    Driver d(GetParam(), dram::PagePolicy::ClosePageAuto,
             /*fast_refresh*/ false);
    d.run(400);
    EXPECT_EQ(d.responses, d.reads);
    // CPA: almost every serviced access finds a precharged bank. (Not
    // strictly all: a preempted write that has already activated its row
    // leaves the bank open until the preemptor's own transactions close
    // it, so preempting mechanisms can still score a handful of hits or
    // conflicts — an emergent interaction, classified faithfully.)
    EXPECT_GT(d.controller->stats().rowEmptyRate(), 0.85);
    EXPECT_GT(d.controller->stats().rowEmpties, 0u);
}

TEST_P(PolicyInterplay, WorksUnderPredictivePolicy)
{
    Driver d(GetParam(), dram::PagePolicy::Predictive,
             /*fast_refresh*/ false);
    d.run(400);
    EXPECT_EQ(d.responses, d.reads);
    const double sum = d.controller->stats().rowHitRate() +
                       d.controller->stats().rowConflictRate() +
                       d.controller->stats().rowEmptyRate();
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(PolicyInterplay, RefreshPlusCpaCombined)
{
    Driver d(GetParam(), dram::PagePolicy::ClosePageAuto,
             /*fast_refresh*/ true);
    d.run(300);
    EXPECT_EQ(d.responses, d.reads);
}

INSTANTIATE_TEST_SUITE_P(
    Table4, PolicyInterplay,
    testing::ValuesIn(std::vector<ctrl::Mechanism>(
        std::begin(ctrl::kExtendedMechanisms),
        std::end(ctrl::kExtendedMechanisms))),
    [](const auto &info) {
        // gtest parameter names must be alphanumeric/underscore only
        // ("FR-FCFS" would abort test registration).
        std::string name = ctrl::mechanismName(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
                c = '_';
        return name;
    });
