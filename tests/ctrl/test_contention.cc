/**
 * @file
 * Contention-aware scheduler zoo: family arbitration semantics driven
 * through the scheduler harness (FR-FCFS row-hit-first, PAR-BS batch
 * marking and shortest-job ranking, ATLAS attained-service ranking,
 * BLISS streak blacklisting), the watermark write-drain mode, the
 * factory's unknown-mechanism diagnostics, and audit-fatal smoke runs
 * of every family across all timing variants.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ctrl/schedulers/factory.hh"
#include "obs/observability.hh"
#include "sim/experiment.hh"

#include "sched_test_util.hh"
#include "sim_error_util.hh"

using namespace bsim;
using schedtest::Harness;

namespace
{

std::vector<std::uint64_t>
idsOf(const std::vector<ctrl::MemAccess *> &order)
{
    std::vector<std::uint64_t> ids;
    for (const ctrl::MemAccess *a : order)
        ids.push_back(a->id);
    return ids;
}

} // namespace

// ---------------------------------------------------------------------
// Naming and factory diagnostics.

TEST(ContentionZoo, NamesRoundTripThroughParseMechanism)
{
    for (ctrl::Mechanism m : ctrl::kContentionMechanisms) {
        EXPECT_TRUE(ctrl::isContentionMechanism(m));
        EXPECT_EQ(ctrl::parseMechanism(ctrl::mechanismName(m)), m);
    }
    EXPECT_EQ(ctrl::parseMechanism("FR-FCFS"), ctrl::Mechanism::FrFcfs);
    EXPECT_EQ(ctrl::parseMechanism("PARBS"), ctrl::Mechanism::Parbs);
    EXPECT_EQ(ctrl::parseMechanism("ATLAS"), ctrl::Mechanism::Atlas);
    EXPECT_EQ(ctrl::parseMechanism("BLISS"), ctrl::Mechanism::Bliss);
    EXPECT_FALSE(ctrl::isContentionMechanism(ctrl::Mechanism::Burst));
    EXPECT_FALSE(ctrl::isContentionMechanism(ctrl::Mechanism::BkInOrder));
}

TEST(ContentionZoo, ParseRejectsUnknownNameWithDiagnostic)
{
    EXPECT_SIM_ERROR(ctrl::parseMechanism("FRFCFS"),
                     ErrorCategory::Config, "unknown mechanism");
}

TEST(ContentionZoo, FactoryNamesTheOffendingMechanism)
{
    dram::MemorySystem mem(schedtest::smallDram());
    ctrl::GlobalCounts counts;
    ctrl::SchedulerContext ctx;
    ctx.mem = &mem;
    ctx.channel = 0;
    ctx.global = &counts;
    EXPECT_SIM_ERROR(ctrl::makeScheduler(ctrl::Mechanism(250), ctx),
                     ErrorCategory::Config, "unrecognized mechanism");
}

// ---------------------------------------------------------------------
// FR-FCFS: ready row hits first, then oldest arrival.

TEST(FrFcfs, RowHitOvertakesOlderRowMiss)
{
    Harness h(ctrl::Mechanism::FrFcfs);
    auto *a = h.add(AccessType::Read, 0, 0, /*row=*/0, 0, /*arrival=*/0);
    auto *b = h.add(AccessType::Read, 0, 0, /*row=*/1, 0, /*arrival=*/1);
    auto *c = h.add(AccessType::Read, 0, 0, /*row=*/0, 1, /*arrival=*/2);

    Tick now = 0;
    const auto order = h.drain(now);
    // A opens row 0; C then hits the open row and overtakes the older
    // row-miss B.
    EXPECT_EQ(idsOf(order),
              (std::vector<std::uint64_t>{a->id, c->id, b->id}));
}

// ---------------------------------------------------------------------
// PAR-BS: batch marking plus shortest-job-first thread ranking.

TEST(Parbs, LightThreadRanksAheadInsideTheNextBatch)
{
    Harness h(ctrl::Mechanism::Parbs);
    // Thread 2's first request ends the empty spell, so the first
    // batch is just {t2a}. The remaining three requests all land in
    // the second batch, formed when t2a's column access issues.
    auto *t2a = h.add(AccessType::Read, 0, 0, 0, 0, /*arr=*/0, /*tag=*/2);
    auto *t2b = h.add(AccessType::Read, 0, 0, 1, 0, /*arr=*/1, /*tag=*/2);
    auto *t2c = h.add(AccessType::Read, 0, 0, 2, 0, /*arr=*/2, /*tag=*/2);
    auto *t1d = h.add(AccessType::Read, 0, 0, 3, 0, /*arr=*/3, /*tag=*/1);

    Tick now = 0;
    const auto order = h.drain(now);
    // Batch 2 load: thread 1 has 1 request, thread 2 has 2 — shortest
    // job first ranks thread 1 ahead, so t1d overtakes the older t2b.
    EXPECT_EQ(idsOf(order), (std::vector<std::uint64_t>{
                                t2a->id, t1d->id, t2b->id, t2c->id}));

    const auto stats = h.sched().extraStats();
    ASSERT_TRUE(stats.count("parbs_batches"));
    EXPECT_EQ(stats.at("parbs_batches"), 2.0);
    EXPECT_EQ(stats.at("parbs_marked_served"), 4.0);
}

// ---------------------------------------------------------------------
// ATLAS: least long-term attained service wins at quantum boundaries.

TEST(Atlas, ServedThreadYieldsToNewcomerAfterQuantumFold)
{
    ctrl::SchedulerParams params;
    params.atlasQuantum = 64;
    Harness h(ctrl::Mechanism::Atlas, schedtest::smallDram(), params);

    // Phase 1: thread 1 alone attains service inside the first quantum.
    h.add(AccessType::Read, 0, 0, 0, 0, /*arr=*/0, /*tag=*/1);
    Tick now = 0;
    h.drain(now);

    // Phase 2: past a quantum boundary the fold credits thread 1's
    // service, so thread 2 (zero attained service) outranks it even
    // though thread 1's request is older.
    now = 128;
    auto *t1 = h.add(AccessType::Read, 0, 0, 1, 0, /*arr=*/128, /*tag=*/1);
    auto *t2 = h.add(AccessType::Read, 0, 0, 2, 0, /*arr=*/129, /*tag=*/2);
    const auto order = h.drain(now);
    EXPECT_EQ(idsOf(order), (std::vector<std::uint64_t>{t2->id, t1->id}));

    const auto stats = h.sched().extraStats();
    ASSERT_TRUE(stats.count("atlas_threads"));
    EXPECT_EQ(stats.at("atlas_threads"), 2.0);
}

// ---------------------------------------------------------------------
// BLISS: a served streak blacklists the thread (deprioritized, never
// blocked).

TEST(Bliss, StreakBlacklistsThreadButDoesNotBlockIt)
{
    ctrl::SchedulerParams params;
    params.blissThreshold = 2;
    Harness h(ctrl::Mechanism::Bliss, schedtest::smallDram(), params);

    auto *t1a = h.add(AccessType::Read, 0, 0, 0, 0, /*arr=*/0, /*tag=*/1);
    auto *t1b = h.add(AccessType::Read, 0, 0, 1, 0, /*arr=*/1, /*tag=*/1);
    auto *t1c = h.add(AccessType::Read, 0, 0, 2, 0, /*arr=*/2, /*tag=*/1);
    auto *t2d = h.add(AccessType::Read, 0, 0, 3, 0, /*arr=*/3, /*tag=*/2);

    Tick now = 0;
    const auto order = h.drain(now);
    // Thread 1's second consecutive serve trips the threshold; the
    // younger thread 2 then overtakes, and the blacklisted thread 1
    // still finishes (deprioritized, not starved).
    EXPECT_EQ(idsOf(order), (std::vector<std::uint64_t>{
                                t1a->id, t1b->id, t2d->id, t1c->id}));

    const auto stats = h.sched().extraStats();
    ASSERT_TRUE(stats.count("bliss_blacklistings"));
    EXPECT_EQ(stats.at("bliss_blacklistings"), 1.0);
}

// ---------------------------------------------------------------------
// Watermark write-drain mode (shared chassis; driven via FR-FCFS).

TEST(WatermarkDrain, HysteresisDrainsWritesThenReturnsToReads)
{
    ctrl::SchedulerParams params;
    params.watermarkDrain = true;
    params.hiWatermark = 2;
    params.loWatermark = 1;
    params.drainTurnaround = 4;
    Harness h(ctrl::Mechanism::FrFcfs, schedtest::smallDram(), params);

    auto *r = h.add(AccessType::Read, 0, 0, 0, 0, /*arr=*/0);
    auto *w1 = h.add(AccessType::Write, 0, 1, 0, 0, /*arr=*/0);
    auto *w2 = h.add(AccessType::Write, 0, 1, 0, 1, /*arr=*/1);
    ASSERT_EQ(h.counts().writesOutstanding, 2u); // at the HI watermark

    // Tick 0 flips into drain mode and starts the turnaround hold:
    // the channel is fully quiesced until the hold expires.
    EXPECT_EQ(h.tick(0).access, nullptr);
    for (Tick t = 1; t < 4; ++t)
        EXPECT_EQ(h.tick(t).access, nullptr) << "tick " << t;

    // During the hold the horizon pins to the flip boundary — the
    // exact-skip contract for the quiesced span.
    EXPECT_EQ(h.sched().nextEventTick(1), Tick(4));
    EXPECT_EQ(h.sched().lastHorizonPin(), ctrl::HorizonPin::DrainFlip);

    Tick now = 4;
    const auto order = h.drain(now);
    // Both writes drain before the read; emptying the write queue
    // flips back (second turnaround hold) and the read completes.
    EXPECT_EQ(idsOf(order),
              (std::vector<std::uint64_t>{w1->id, w2->id, r->id}));

    const auto stats = h.sched().extraStats();
    ASSERT_TRUE(stats.count("drain_flips"));
    EXPECT_EQ(stats.at("drain_flips"), 2.0);
}

TEST(WatermarkDrain, OffByDefaultAndGloballyInsensitiveWithoutIt)
{
    Harness plain(ctrl::Mechanism::FrFcfs);
    EXPECT_FALSE(plain.sched().globallySensitive());

    ctrl::SchedulerParams params;
    params.watermarkDrain = true;
    Harness wd(ctrl::Mechanism::FrFcfs, schedtest::smallDram(), params);
    EXPECT_TRUE(wd.sched().globallySensitive());
}

// ---------------------------------------------------------------------
// Audit-fatal smoke: every family, every timing variant, with and
// without watermark drain, must complete a short run without a single
// DDR2 protocol violation (AuditMode::Fatal throws on the first one).

TEST(ContentionZoo, AuditFatalSmokeAcrossTimingVariantsAndDrainModes)
{
    for (ctrl::Mechanism m : ctrl::kContentionMechanisms) {
        for (std::size_t v = 0; v < sim::kNumTimingVariants; ++v) {
            for (bool wd : {false, true}) {
                sim::ExperimentConfig cfg;
                cfg.workload = "swim";
                cfg.mechanism = m;
                cfg.instructions = 4000;
                cfg.timingVariant = sim::TimingVariant(v);
                cfg.watermarkDrain = wd;
                cfg.engine = sim::EngineKind::Skip;
                cfg.obs.audit = obs::AuditMode::Fatal;
                sim::RunResult r;
                EXPECT_NO_THROW(r = sim::runExperiment(cfg))
                    << ctrl::mechanismName(m) << " variant=" << v
                    << " wd=" << wd;
                EXPECT_GT(r.ctrl.reads, 0u) << ctrl::mechanismName(m);
            }
        }
    }
}
