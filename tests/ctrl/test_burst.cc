/**
 * @file
 * Burst scheduler tests — the paper's mechanism (Section 3): burst
 * formation and joining (Figure 4), the bank arbiter with read
 * preemption and write piggybacking (Figure 5), and the Table 2
 * transaction priorities (Figure 6).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ctrl/schedulers/burst.hh"
#include "sched_test_util.hh"

using namespace bsim;
using schedtest::Harness;

namespace
{

ctrl::SchedulerParams
thParams(std::size_t threshold, std::size_t cap = 64)
{
    ctrl::SchedulerParams p;
    p.threshold = threshold;
    p.writeCap = cap;
    return p;
}

const ctrl::BurstScheduler &
burstOf(Harness &h)
{
    return static_cast<const ctrl::BurstScheduler &>(h.sched());
}

} // namespace

TEST(Burst, SameRowReadsFormOneBurst)
{
    Harness h(ctrl::Mechanism::Burst);
    h.add(AccessType::Read, 0, 0, 1, 0, 0);
    h.add(AccessType::Read, 0, 0, 1, 1, 1);
    h.add(AccessType::Read, 0, 0, 1, 2, 2);
    const auto &bursts = burstOf(h).burstsOfBank(0);
    ASSERT_EQ(bursts.size(), 1u);
    EXPECT_EQ(bursts.front().reads.size(), 3u);
    EXPECT_EQ(bursts.front().row, 1u);
}

TEST(Burst, DifferentRowsFormSeparateBursts)
{
    Harness h(ctrl::Mechanism::Burst);
    h.add(AccessType::Read, 0, 0, 1, 0, 0);
    h.add(AccessType::Read, 0, 0, 2, 0, 1);
    h.add(AccessType::Read, 0, 0, 1, 1, 2); // joins the first burst
    const auto &bursts = burstOf(h).burstsOfBank(0);
    ASSERT_EQ(bursts.size(), 2u);
    EXPECT_EQ(bursts[0].reads.size(), 2u);
    EXPECT_EQ(bursts[1].reads.size(), 1u);
}

TEST(Burst, BurstsOrderedByFirstArrival)
{
    // A growing burst must not starve an older single-access burst in
    // the same bank: bursts are served in order of their first access.
    Harness h(ctrl::Mechanism::Burst);
    auto *old_single = h.add(AccessType::Read, 0, 0, 5, 0, 0);
    auto *b1 = h.add(AccessType::Read, 0, 0, 7, 0, 1);
    auto *b2 = h.add(AccessType::Read, 0, 0, 7, 1, 2);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], old_single);
    EXPECT_EQ(order[1], b1);
    EXPECT_EQ(order[2], b2);
}

TEST(Burst, BurstRowHitsScheduleBackToBack)
{
    // The design goal (Section 3): within a burst every access after the
    // first is a row hit and data transfers run back to back.
    Harness h(ctrl::Mechanism::Burst);
    for (std::uint32_t i = 0; i < 4; ++i)
        h.add(AccessType::Read, 0, 0, 1, i, i);
    Tick now = 0;
    std::vector<Tick> data_start, data_end;
    while (h.sched().hasWork()) {
        auto issued = h.tick(now);
        if (issued.columnAccess) {
            data_end.push_back(issued.dataEnd);
            data_start.push_back(issued.dataEnd -
                                 h.mem().timing().dataCycles());
        }
        ++now;
    }
    ASSERT_EQ(data_end.size(), 4u);
    for (std::size_t i = 1; i < 4; ++i)
        EXPECT_EQ(data_start[i], data_end[i - 1]) << "bubble before " << i;
}

TEST(Burst, NewReadJoinsBurstBeingScheduled)
{
    Harness h(ctrl::Mechanism::Burst);
    h.add(AccessType::Read, 0, 0, 1, 0, 0);
    h.add(AccessType::Read, 0, 0, 1, 1, 0);
    Tick now = 0;
    // Start servicing: activate + first column.
    while (true) {
        auto issued = h.tick(now++);
        if (issued.columnAccess)
            break;
    }
    // The burst is mid-flight; a same-row read must join it and be
    // serviced as a row hit, before any new-row burst.
    auto *late_join = h.add(AccessType::Read, 0, 0, 1, 2, now);
    auto *other_row = h.add(AccessType::Read, 0, 0, 9, 0, now);
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[1], late_join);
    EXPECT_EQ(order[2], other_row);
}

TEST(Burst, InterleavesBurstsAcrossBanks)
{
    // Bursts from different banks are interleaved so one bank's long
    // burst cannot monopolize the channel (Section 3, Table 2 gives
    // same-rank other-bank column accesses priority 2).
    Harness h(ctrl::Mechanism::Burst);
    std::vector<ctrl::MemAccess *> bank0, bank1;
    for (std::uint32_t i = 0; i < 3; ++i)
        bank0.push_back(h.add(AccessType::Read, 0, 0, 1, i, i));
    for (std::uint32_t i = 0; i < 3; ++i)
        bank1.push_back(h.add(AccessType::Read, 0, 1, 1, i, i));
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 6u);
    // Not fully serialized: some bank1 access completes before the last
    // bank0 access.
    std::size_t last_b0 = 0, first_b1 = order.size();
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (order[i] == bank0[2])
            last_b0 = i;
        if (order[i] == bank1[0])
            first_b1 = std::min(first_b1, i);
    }
    EXPECT_LT(first_b1, last_b0);
}

TEST(Burst, WritesWaitWhileReadsOutstanding)
{
    Harness h(ctrl::Mechanism::Burst);
    auto *w = h.add(AccessType::Write, 0, 0, 1, 0, 0);
    auto *r = h.add(AccessType::Read, 0, 1, 2, 0, 1);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], r);
    EXPECT_EQ(order[1], w);
}

TEST(Burst, FullWriteQueueForcesWriteService)
{
    Harness h(ctrl::Mechanism::Burst, schedtest::smallDram(),
              thParams(52, /*cap*/ 2));
    auto *w0 = h.add(AccessType::Write, 0, 0, 1, 0, 0);
    auto *w1 = h.add(AccessType::Write, 0, 0, 1, 1, 1);
    h.add(AccessType::Read, 0, 1, 2, 0, 2);
    // Global write count == cap (2): Figure 5 line 2 applies; the
    // oldest write must be selected even though a read is outstanding.
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_TRUE(order[0] == w0 || order[1] == w0);
    (void)w1;
}

TEST(BurstRP, ReadPreemptsOngoingWrite)
{
    Harness h(ctrl::Mechanism::BurstRP);
    auto *w = h.add(AccessType::Write, 0, 0, 1, 0, 0);
    Tick now = 0;
    h.tick(now++); // activate for the write; write is ongoing
    auto *r = h.add(AccessType::Read, 0, 0, 2, 0, now);
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], r);
    EXPECT_EQ(order[1], w);
    EXPECT_GE(h.sched().extraStats().at("preemptions"), 1.0);
}

TEST(BurstRP, PreemptedWriteSeesRowEmptyAfterPrecharge)
{
    // Section 5.2: an ongoing write interrupted after its precharge but
    // before its activate leaves the bank closed — the preempting read
    // becomes a row empty.
    Harness h(ctrl::Mechanism::BurstRP);
    // Open a row so the write needs a precharge first.
    auto *opener = h.add(AccessType::Read, 0, 0, 5, 0, 0);
    Tick now = 0;
    while (h.sched().hasWork())
        h.tick(now++);
    (void)opener;
    auto *w = h.add(AccessType::Write, 0, 0, 1, 0, now);
    // Service the write up to its precharge.
    while (true) {
        auto issued = h.tick(now++);
        if (issued.access == w && issued.cmd == dram::CmdType::Precharge)
            break;
    }
    auto *r = h.add(AccessType::Read, 0, 0, 2, 0, now);
    while (h.sched().hasWork())
        h.tick(now++);
    ASSERT_TRUE(r->outcomeValid);
    EXPECT_EQ(r->outcome, dram::RowOutcome::Empty);
}

TEST(BurstTH, NoPreemptionAboveThreshold)
{
    Harness h(ctrl::Mechanism::BurstTH, schedtest::smallDram(),
              thParams(/*threshold*/ 1));
    // Two writes outstanding (> threshold 1): preemption is disabled.
    auto *w0 = h.add(AccessType::Write, 0, 0, 1, 0, 0);
    h.add(AccessType::Write, 0, 0, 1, 1, 1);
    Tick now = 0;
    h.tick(now++); // write activate
    auto *r = h.add(AccessType::Read, 0, 0, 2, 0, now);
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], w0) << "write must not be preempted above TH";
    (void)r;
}

TEST(BurstWP, QualifiedWritePiggybacksAtEndOfBurst)
{
    Harness h(ctrl::Mechanism::BurstWP);
    // A read burst in row 1 and one write to the same row, one to a
    // different row.
    auto *r0 = h.add(AccessType::Read, 0, 0, 1, 0, 0);
    auto *r1 = h.add(AccessType::Read, 0, 0, 1, 1, 1);
    auto *w_same = h.add(AccessType::Write, 0, 0, 1, 5, 2);
    auto *w_other = h.add(AccessType::Write, 0, 0, 3, 0, 3);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], r0);
    EXPECT_EQ(order[1], r1);
    EXPECT_EQ(order[2], w_same) << "same-row write piggybacks first";
    EXPECT_EQ(order[3], w_other);
    EXPECT_GE(h.sched().extraStats().at("piggybacks"), 1.0);
    // The piggybacked write is a row hit by construction.
    EXPECT_EQ(w_same->outcome, dram::RowOutcome::Hit);
}

TEST(BurstWP, OldestQualifiedWriteFirst)
{
    // WAW safety (Section 3.4): among qualified same-row writes the
    // oldest is selected first, so same-row writes stay in program order.
    Harness h(ctrl::Mechanism::BurstWP);
    h.add(AccessType::Read, 0, 0, 1, 0, 0);
    auto *w_old = h.add(AccessType::Write, 0, 0, 1, 5, 1);
    auto *w_new = h.add(AccessType::Write, 0, 0, 1, 5, 2); // same block!
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[1], w_old);
    EXPECT_EQ(order[2], w_new);
}

TEST(BurstWP, NoQualifiedWriteStartsNextBurst)
{
    Harness h(ctrl::Mechanism::BurstWP);
    auto *r0 = h.add(AccessType::Read, 0, 0, 1, 0, 0);
    auto *w_other = h.add(AccessType::Write, 0, 0, 3, 0, 1);
    auto *r1 = h.add(AccessType::Read, 0, 0, 2, 0, 2);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], r0);
    // No row-1 write exists: the next burst (row 2) starts; the
    // unqualified write waits until reads drain.
    EXPECT_EQ(order[1], r1);
    EXPECT_EQ(order[2], w_other);
}

TEST(BurstWP, PiggybackChainsDrainRowLocalWrites)
{
    Harness h(ctrl::Mechanism::BurstWP);
    h.add(AccessType::Read, 0, 0, 1, 0, 0);
    std::vector<ctrl::MemAccess *> ws;
    for (std::uint32_t i = 0; i < 3; ++i)
        ws.push_back(h.add(AccessType::Write, 0, 0, 1, 4 + i, 1 + i));
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[1], ws[0]);
    EXPECT_EQ(order[2], ws[1]);
    EXPECT_EQ(order[3], ws[2]);
    EXPECT_GE(h.sched().extraStats().at("piggybacks"), 3.0);
}

TEST(Burst, Table2PrioritySameBankColumnFirst)
{
    // After a column access in bank 0, another unblocked column access
    // in bank 0 (same burst) has priority 1 and goes before a column
    // access in bank 1 (priority 2), even if the bank-1 access is older.
    Harness h(ctrl::Mechanism::Burst);
    auto *b1 = h.add(AccessType::Read, 0, 1, 1, 0, 0); // older
    auto *a0 = h.add(AccessType::Read, 0, 0, 1, 0, 1);
    auto *a1 = h.add(AccessType::Read, 0, 0, 1, 1, 2);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    // b1 is older so its burst starts first; once bank1's column issued,
    // bank0 bursts; a0 and a1 run back to back (same bank priority).
    EXPECT_EQ(order[0], b1);
    EXPECT_EQ(order[1], a0);
    EXPECT_EQ(order[2], a1);
}

TEST(Burst, Table2ReadColumnBeatsWriteColumn)
{
    Harness h(ctrl::Mechanism::Burst, schedtest::smallDram(),
              thParams(52, /*cap*/ 1));
    // One write (queue full at cap 1 -> bank arbiter selects it) and one
    // read in another bank; both become ongoing. The read's column
    // access must win the bus (priority 2 vs 4).
    auto *w = h.add(AccessType::Write, 0, 0, 1, 0, 0);
    auto *r = h.add(AccessType::Read, 0, 1, 1, 0, 0);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], r);
    EXPECT_EQ(order[1], w);
}

TEST(Burst, SameRankColumnsBeatOtherRank)
{
    // Table 2: column accesses in the last-used rank (prio 2) beat
    // column accesses to other ranks (prio 7), avoiding rank-to-rank
    // turnaround. Both bursts are equally old per bank.
    Harness h(ctrl::Mechanism::Burst);
    auto *r0a = h.add(AccessType::Read, 0, 0, 1, 0, 0);
    auto *r1 = h.add(AccessType::Read, 1, 0, 1, 0, 0); // other rank
    auto *r0b = h.add(AccessType::Read, 0, 1, 1, 0, 1);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    // Once rank 0 owns the bus, the rank-0 access in the other bank goes
    // before the rank-1 access despite r1 being older than r0b.
    EXPECT_EQ(order[0], r0a);
    EXPECT_EQ(order[1], r0b);
    EXPECT_EQ(order[2], r1);
}

TEST(Burst, DrainsAllWorkEventually)
{
    Harness h(ctrl::Mechanism::BurstTH);
    bsim::Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        h.add(rng.chance(0.3) ? AccessType::Write : AccessType::Read,
              std::uint32_t(rng.below(2)), std::uint32_t(rng.below(2)),
              std::uint32_t(rng.below(8)), std::uint32_t(rng.below(32)),
              Tick(i));
    }
    Tick now = 0;
    const auto order = h.drain(now);
    EXPECT_EQ(order.size(), 200u);
}

TEST(BurstExt, SizeSortedBurstsPreferLargest)
{
    ctrl::SchedulerParams params;
    params.sortBurstsBySize = true;
    Harness h(ctrl::Mechanism::Burst, schedtest::smallDram(), params);
    auto *small_old = h.add(AccessType::Read, 0, 0, 5, 0, 0);
    std::vector<ctrl::MemAccess *> big;
    for (std::uint32_t i = 0; i < 3; ++i)
        big.push_back(h.add(AccessType::Read, 0, 0, 7, i, Tick(1 + i)));
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 4u);
    // The larger (newer) burst jumps ahead of the older single access.
    EXPECT_EQ(order[0], big[0]);
    EXPECT_EQ(order[3], small_old);
}

TEST(BurstExt, SizeSortNeverDisplacesStartedBurst)
{
    ctrl::SchedulerParams params;
    params.sortBurstsBySize = true;
    Harness h(ctrl::Mechanism::Burst, schedtest::smallDram(), params);
    auto *first = h.add(AccessType::Read, 0, 0, 5, 0, 0);
    auto *second = h.add(AccessType::Read, 0, 0, 5, 1, 1);
    Tick now = 0;
    // Start the row-5 burst.
    while (true) {
        auto issued = h.tick(now++);
        if (issued.columnAccess)
            break;
    }
    // A bigger burst arrives; it must wait for the started burst.
    std::vector<ctrl::MemAccess *> big;
    for (std::uint32_t i = 0; i < 4; ++i)
        big.push_back(h.add(AccessType::Read, 0, 0, 9, i, now));
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 5u);
    EXPECT_EQ(order[0], second);
    EXPECT_EQ(order[1], big[0]);
    (void)first;
}

TEST(BurstExt, RankUnawarePrioritiesStillDrain)
{
    ctrl::SchedulerParams params;
    params.rankAware = false;
    Harness h(ctrl::Mechanism::Burst, schedtest::smallDram(), params);
    for (std::uint32_t r = 0; r < 2; ++r)
        for (std::uint32_t i = 0; i < 4; ++i)
            h.add(AccessType::Read, r, 0, 1, i, Tick(i));
    Tick now = 0;
    const auto order = h.drain(now);
    EXPECT_EQ(order.size(), 8u);
}

TEST(BurstExt, RankUnawareInterleavesRanksSooner)
{
    // Without rank demotion, the other rank's burst is served
    // interleaved rather than after the first rank finishes.
    auto run = [](bool aware) {
        ctrl::SchedulerParams params;
        params.rankAware = aware;
        Harness h(ctrl::Mechanism::Burst, schedtest::smallDram(), params);
        std::vector<ctrl::MemAccess *> rank1;
        for (std::uint32_t i = 0; i < 4; ++i)
            h.add(AccessType::Read, 0, 0, 1, i, 0);
        for (std::uint32_t i = 0; i < 4; ++i)
            rank1.push_back(h.add(AccessType::Read, 1, 0, 1, i, 1));
        Tick now = 0;
        const auto order = h.drain(now);
        std::size_t first_r1 = order.size();
        for (std::size_t i = 0; i < order.size(); ++i)
            if (order[i] == rank1[0]) {
                first_r1 = i;
                break;
            }
        return first_r1;
    };
    EXPECT_LE(run(false), run(true));
}

TEST(BurstExt, DynamicThresholdDrainsWriteHeavyStream)
{
    ctrl::SchedulerParams params;
    params.dynamicThreshold = true;
    params.threshold = 52;
    Harness h(ctrl::Mechanism::BurstTH, schedtest::smallDram(), params);
    bsim::Rng rng(77);
    for (int i = 0; i < 120; ++i) {
        h.add(rng.chance(0.6) ? AccessType::Write : AccessType::Read,
              std::uint32_t(rng.below(2)), std::uint32_t(rng.below(2)),
              std::uint32_t(rng.below(4)), std::uint32_t(rng.below(32)),
              Tick(i));
    }
    Tick now = 0;
    const auto order = h.drain(now);
    EXPECT_EQ(order.size(), 120u);
    // Write-heavy mix: the adaptive threshold must have enabled
    // piggybacking.
    EXPECT_GE(h.sched().extraStats().at("piggybacks"), 1.0);
}

TEST(BurstExt, CriticalReadJumpsQueueWithinBurst)
{
    ctrl::SchedulerParams params;
    params.criticalFirst = true;
    Harness h(ctrl::Mechanism::Burst, schedtest::smallDram(), params);
    auto *x0 = h.add(AccessType::Read, 0, 0, 1, 0, 0);
    auto *x1 = h.add(AccessType::Read, 0, 0, 1, 1, 1);
    auto *xc = h.addCritical(0, 0, 1, 2, 2);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    // Intra-burst reordering is free (any member can open the row), so
    // the critical read heads the whole burst.
    EXPECT_EQ(order[0], xc) << "critical read must jump the queue";
    EXPECT_EQ(order[1], x0);
    EXPECT_EQ(order[2], x1);
}

TEST(BurstExt, CriticalFirstOffPreservesArrivalOrder)
{
    Harness h(ctrl::Mechanism::Burst);
    auto *x0 = h.add(AccessType::Read, 0, 0, 1, 0, 0);
    auto *x1 = h.add(AccessType::Read, 0, 0, 1, 1, 1);
    auto *xc = h.addCritical(0, 0, 1, 2, 2);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], x0);
    EXPECT_EQ(order[1], x1);
    EXPECT_EQ(order[2], xc);
}
