/**
 * @file
 * BkInOrder scheduler tests: arrival order within banks, round robin
 * across banks.
 */

#include <gtest/gtest.h>

#include "sched_test_util.hh"

using namespace bsim;
using schedtest::Harness;

TEST(BkInOrder, PreservesPerBankArrivalOrder)
{
    Harness h(ctrl::Mechanism::BkInOrder);
    // Same bank: a row hit arriving later must NOT bypass an older
    // conflict — that is the whole point of in-order.
    auto *a = h.add(AccessType::Read, 0, 0, /*row*/ 1, 0, 0);
    auto *b = h.add(AccessType::Read, 0, 0, /*row*/ 2, 0, 1);
    auto *c = h.add(AccessType::Read, 0, 0, /*row*/ 1, 1, 2);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], a);
    EXPECT_EQ(order[1], b);
    EXPECT_EQ(order[2], c);
}

TEST(BkInOrder, WritesNotPostponed)
{
    Harness h(ctrl::Mechanism::BkInOrder);
    auto *w = h.add(AccessType::Write, 0, 0, 1, 0, 0);
    auto *r = h.add(AccessType::Read, 0, 0, 1, 1, 1);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], w);
    EXPECT_EQ(order[1], r);
}

TEST(BkInOrder, RoundRobinAcrossBanks)
{
    Harness h(ctrl::Mechanism::BkInOrder);
    // Two accesses per bank; service should alternate banks rather than
    // drain one bank first.
    auto *a0 = h.add(AccessType::Read, 0, 0, 1, 0, 0);
    auto *a1 = h.add(AccessType::Read, 0, 0, 1, 1, 1);
    auto *b0 = h.add(AccessType::Read, 0, 1, 1, 0, 2);
    auto *b1 = h.add(AccessType::Read, 0, 1, 1, 1, 3);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 4u);
    // Alternation: the two banks interleave (a0/b0 before a1/b1).
    EXPECT_TRUE((order[0] == a0 && order[1] == b0) ||
                (order[0] == b0 && order[1] == a0));
    EXPECT_TRUE((order[2] == a1 && order[3] == b1) ||
                (order[2] == b1 && order[3] == a1));
}

TEST(BkInOrder, CountsTrackQueues)
{
    Harness h(ctrl::Mechanism::BkInOrder);
    EXPECT_FALSE(h.sched().hasWork());
    h.add(AccessType::Read, 0, 0, 1, 0);
    h.add(AccessType::Write, 0, 1, 1, 0);
    EXPECT_EQ(h.sched().readCount(), 1u);
    EXPECT_EQ(h.sched().writeCount(), 1u);
    EXPECT_TRUE(h.sched().hasWork());
    Tick now = 0;
    h.drain(now);
    EXPECT_EQ(h.sched().readCount(), 0u);
    EXPECT_EQ(h.sched().writeCount(), 0u);
}

TEST(BkInOrder, IdleTickIssuesNothing)
{
    Harness h(ctrl::Mechanism::BkInOrder);
    const auto issued = h.tick(0);
    EXPECT_EQ(issued.access, nullptr);
}

TEST(BkInOrder, FindWriteSeesQueuedWrite)
{
    Harness h(ctrl::Mechanism::BkInOrder);
    auto *w = h.add(AccessType::Write, 0, 0, 1, 0);
    EXPECT_EQ(h.sched().findWrite(w->addr), w);
    Tick now = 0;
    h.drain(now);
    EXPECT_EQ(h.sched().findWrite(w->addr), nullptr);
}

TEST(BkInOrder, LatestWriteWinsForwarding)
{
    Harness h(ctrl::Mechanism::BkInOrder);
    h.add(AccessType::Write, 0, 0, 1, 0);
    auto *w2 = h.add(AccessType::Write, 0, 0, 1, 0); // same block
    EXPECT_EQ(h.sched().findWrite(w2->addr), w2);
}
