/**
 * @file
 * Exact threshold semantics of Figure 5: preemption requires the write
 * occupancy to be strictly *below* the threshold ("write queues length
 * < threshold", line 9), piggybacking requires it strictly *above*
 * ("write queue length > threshold", line 4). At occupancy == threshold
 * both are disabled. These boundary tests pin the inequalities so a
 * refactor cannot silently flip them — they are what makes
 * Burst_RP == TH(writeCap) and Burst_WP == TH(0) hold exactly
 * (Section 5.4).
 */

#include <gtest/gtest.h>

#include "sched_test_util.hh"

using namespace bsim;
using schedtest::Harness;

namespace
{

ctrl::SchedulerParams
thParams(std::size_t threshold)
{
    ctrl::SchedulerParams p;
    p.threshold = threshold;
    p.writeCap = 64;
    return p;
}

/**
 * Build the preemption scenario with @p queued_writes outstanding while
 * one of them is ongoing; returns true when the late read preempted it
 * (serviced first).
 */
bool
readPreempts(std::size_t threshold, std::size_t queued_writes)
{
    Harness h(ctrl::Mechanism::BurstTH, schedtest::smallDram(),
              thParams(threshold));
    std::vector<ctrl::MemAccess *> ws;
    for (std::size_t i = 0; i < queued_writes; ++i)
        ws.push_back(h.add(AccessType::Write, 0, 0, 1,
                           std::uint32_t(i), Tick(i)));
    Tick now = 0;
    h.tick(now++); // the oldest write becomes ongoing (activate issues)
    auto *r = h.add(AccessType::Read, 0, 0, 2, 0, now);
    const auto order = h.drain(now);
    return order.front() == r;
}

/**
 * Piggyback scenario: a one-read burst in row 1 plus @p queued_writes
 * writes, the oldest of which is row-1 (qualified). Returns true when
 * that write was serviced immediately after the burst (piggybacked)
 * rather than after the row-2 burst that is also waiting.
 */
bool
writePiggybacks(std::size_t threshold, std::size_t queued_writes)
{
    Harness h(ctrl::Mechanism::BurstTH, schedtest::smallDram(),
              thParams(threshold));
    auto *r1 = h.add(AccessType::Read, 0, 0, 1, 0, 0);
    auto *w = h.add(AccessType::Write, 0, 0, 1, 5, 1); // qualified
    for (std::size_t i = 1; i < queued_writes; ++i)
        h.add(AccessType::Write, 0, 0, 9, std::uint32_t(i), Tick(1 + i));
    auto *r2 = h.add(AccessType::Read, 0, 0, 2, 0, 2);
    Tick now = 0;
    const auto order = h.drain(now);
    EXPECT_EQ(order.front(), r1);
    (void)r2;
    return order[1] == w;
}

} // namespace

TEST(ThresholdSemantics, PreemptionEnabledStrictlyBelow)
{
    // occupancy 2 < threshold 3: preempt.
    EXPECT_TRUE(readPreempts(/*threshold*/ 3, /*writes*/ 2));
}

TEST(ThresholdSemantics, PreemptionDisabledAtEquality)
{
    // occupancy 3 == threshold 3: no preemption (Figure 5 line 9 is a
    // strict inequality).
    EXPECT_FALSE(readPreempts(/*threshold*/ 3, /*writes*/ 3));
}

TEST(ThresholdSemantics, PreemptionDisabledAbove)
{
    EXPECT_FALSE(readPreempts(/*threshold*/ 3, /*writes*/ 4));
}

TEST(ThresholdSemantics, PiggybackEnabledStrictlyAbove)
{
    // occupancy 3 > threshold 2: piggyback the qualified write.
    EXPECT_TRUE(writePiggybacks(/*threshold*/ 2, /*writes*/ 3));
}

TEST(ThresholdSemantics, PiggybackDisabledAtEquality)
{
    // occupancy 2 == threshold 2: no piggybacking (Figure 5 line 4 is a
    // strict inequality); the row-2 burst starts instead.
    EXPECT_FALSE(writePiggybacks(/*threshold*/ 2, /*writes*/ 2));
}

TEST(ThresholdSemantics, PiggybackDisabledBelow)
{
    EXPECT_FALSE(writePiggybacks(/*threshold*/ 3, /*writes*/ 2));
}

TEST(ThresholdSemantics, Th64EquivalentToRp)
{
    // Section 5.4: Burst_RP == Burst_TH(64) given the 64-entry queue.
    for (std::size_t writes : {1u, 3u}) {
        Harness rp(ctrl::Mechanism::BurstRP);
        Harness th(ctrl::Mechanism::BurstTH, schedtest::smallDram(),
                   thParams(64));
        for (auto *h : {&rp, &th}) {
            for (std::size_t i = 0; i < writes; ++i)
                h->add(AccessType::Write, 0, 0, 1, std::uint32_t(i),
                       Tick(i));
            Tick now = 0;
            h->tick(now++);
            h->add(AccessType::Read, 0, 0, 2, 0, now);
        }
        Tick now_rp = 1, now_th = 1;
        const auto o1 = rp.drain(now_rp);
        const auto o2 = th.drain(now_th);
        ASSERT_EQ(o1.size(), o2.size());
        for (std::size_t i = 0; i < o1.size(); ++i)
            EXPECT_EQ(o1[i]->isRead(), o2[i]->isRead()) << i;
        EXPECT_EQ(now_rp, now_th);
    }
}

TEST(ThresholdSemantics, Th0EquivalentToWp)
{
    // Section 5.4: Burst_WP == Burst_TH(0).
    Harness wp(ctrl::Mechanism::BurstWP);
    Harness th(ctrl::Mechanism::BurstTH, schedtest::smallDram(),
               thParams(0));
    for (auto *h : {&wp, &th}) {
        h->add(AccessType::Read, 0, 0, 1, 0, 0);
        h->add(AccessType::Write, 0, 0, 1, 5, 1);
        h->add(AccessType::Read, 0, 0, 2, 0, 2);
        h->add(AccessType::Write, 0, 0, 2, 6, 3);
    }
    Tick now_wp = 0, now_th = 0;
    const auto o1 = wp.drain(now_wp);
    const auto o2 = th.drain(now_th);
    ASSERT_EQ(o1.size(), o2.size());
    for (std::size_t i = 0; i < o1.size(); ++i) {
        EXPECT_EQ(o1[i]->isRead(), o2[i]->isRead()) << i;
        EXPECT_EQ(o1[i]->coords.row, o2[i]->coords.row) << i;
    }
    EXPECT_EQ(now_wp, now_th);
}
