/**
 * @file
 * RowHit (Rixner et al.) scheduler tests: oldest-row-hit-first within a
 * bank, oldest fallback, equal treatment of reads and writes.
 */

#include <gtest/gtest.h>

#include "sched_test_util.hh"

using namespace bsim;
using schedtest::Harness;

TEST(RowHit, RowHitBypassesOlderConflict)
{
    Harness h(ctrl::Mechanism::RowHit);
    auto *a = h.add(AccessType::Read, 0, 0, /*row*/ 1, 0, 0);
    auto *b = h.add(AccessType::Read, 0, 0, /*row*/ 2, 0, 1);
    auto *c = h.add(AccessType::Read, 0, 0, /*row*/ 1, 1, 2);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    // After a opens row 1, c (row hit) bypasses b (conflict).
    EXPECT_EQ(order[0], a);
    EXPECT_EQ(order[1], c);
    EXPECT_EQ(order[2], b);
}

TEST(RowHit, OldestRowHitSelectedFirst)
{
    Harness h(ctrl::Mechanism::RowHit);
    auto *a = h.add(AccessType::Read, 0, 0, 1, 0, 0);
    auto *hit_old = h.add(AccessType::Read, 0, 0, 1, 1, 1);
    auto *hit_new = h.add(AccessType::Read, 0, 0, 1, 2, 2);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], a);
    EXPECT_EQ(order[1], hit_old);
    EXPECT_EQ(order[2], hit_new);
}

TEST(RowHit, WritesAreRowHitsToo)
{
    // RowHit treats reads and writes equally: a write row hit bypasses
    // an older read conflict.
    Harness h(ctrl::Mechanism::RowHit);
    auto *a = h.add(AccessType::Read, 0, 0, 1, 0, 0);
    auto *conflict = h.add(AccessType::Read, 0, 0, 2, 0, 1);
    auto *whit = h.add(AccessType::Write, 0, 0, 1, 3, 2);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], a);
    EXPECT_EQ(order[1], whit);
    EXPECT_EQ(order[2], conflict);
}

TEST(RowHit, FallsBackToOldestWhenNoHit)
{
    Harness h(ctrl::Mechanism::RowHit);
    auto *a = h.add(AccessType::Read, 0, 0, 1, 0, 0);
    auto *b = h.add(AccessType::Read, 0, 0, 3, 0, 1);
    auto *c = h.add(AccessType::Read, 0, 0, 2, 0, 2);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], a);
    EXPECT_EQ(order[1], b); // no hit available: oldest first
    EXPECT_EQ(order[2], c);
}

TEST(RowHit, SameBlockReadDoesNotPassOlderWrite)
{
    // Hazard ordering: a read to the same block as an older write in the
    // same row cannot be reordered before it (both are row hits; oldest
    // first breaks the tie).
    Harness h(ctrl::Mechanism::RowHit);
    auto *opener = h.add(AccessType::Read, 0, 0, 1, 0, 0);
    auto *w = h.add(AccessType::Write, 0, 0, 1, 5, 1);
    auto *r = h.add(AccessType::Read, 0, 0, 1, 5, 2);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], opener);
    EXPECT_EQ(order[1], w);
    EXPECT_EQ(order[2], r);
}

TEST(RowHit, BanksServedRoundRobin)
{
    Harness h(ctrl::Mechanism::RowHit);
    auto *a0 = h.add(AccessType::Read, 0, 0, 1, 0, 0);
    auto *a1 = h.add(AccessType::Read, 0, 0, 1, 1, 1);
    auto *b0 = h.add(AccessType::Read, 0, 1, 1, 0, 2);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    // b0 must not wait for both a-accesses.
    EXPECT_TRUE(order[1] == b0 || order[0] == b0);
    (void)a0;
    (void)a1;
}
