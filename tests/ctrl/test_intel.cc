/**
 * @file
 * Intel scheduler tests: read priority over writes, write-queue flush
 * behaviour, and read preemption (Intel_RP).
 */

#include <gtest/gtest.h>

#include "sched_test_util.hh"

using namespace bsim;
using schedtest::Harness;

TEST(Intel, ReadsBypassOlderWrites)
{
    Harness h(ctrl::Mechanism::Intel);
    auto *w = h.add(AccessType::Write, 0, 0, 1, 0, 0);
    auto *r = h.add(AccessType::Read, 0, 0, 2, 0, 1);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], r);
    EXPECT_EQ(order[1], w);
}

TEST(Intel, WritesDrainWhenNoReads)
{
    Harness h(ctrl::Mechanism::Intel);
    auto *w = h.add(AccessType::Write, 0, 0, 1, 0, 0);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0], w);
}

TEST(Intel, RowHitReadPreferredWithinWindow)
{
    Harness h(ctrl::Mechanism::Intel);
    auto *opener = h.add(AccessType::Read, 0, 0, 1, 0, 0);
    auto *conflict = h.add(AccessType::Read, 0, 0, 2, 0, 1);
    auto *hit = h.add(AccessType::Read, 0, 0, 1, 1, 2);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], opener);
    EXPECT_EQ(order[1], hit); // row hit bypasses the conflict
    EXPECT_EQ(order[2], conflict);
}

TEST(Intel, RowHitBeyondReorderWindowNotFound)
{
    // "Best effort" grouping: the row-hit search only examines the head
    // of the per-bank queue (window of 4).
    Harness h(ctrl::Mechanism::Intel);
    auto *opener = h.add(AccessType::Read, 0, 0, 1, 0, 0);
    std::vector<ctrl::MemAccess *> conflicts;
    for (int i = 0; i < 4; ++i)
        conflicts.push_back(
            h.add(AccessType::Read, 0, 0, 2 + std::uint32_t(i), 0,
                  Tick(1 + i)));
    auto *hit = h.add(AccessType::Read, 0, 0, 1, 1, 9);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 6u);
    EXPECT_EQ(order[0], opener);
    // The row hit sits outside the 4-deep window, so the oldest conflict
    // goes next instead.
    EXPECT_EQ(order[1], conflicts[0]);
    (void)hit;
}

TEST(Intel, FullWriteQueueTriggersFlush)
{
    ctrl::SchedulerParams params;
    params.writeCap = 4;
    Harness h(ctrl::Mechanism::Intel, schedtest::smallDram(), params);
    // Saturate the write queue, keep a stream of reads available.
    std::vector<ctrl::MemAccess *> writes;
    for (int i = 0; i < 4; ++i)
        writes.push_back(
            h.add(AccessType::Write, 0, 0, 1, std::uint32_t(i), Tick(i)));
    auto *r = h.add(AccessType::Read, 0, 1, 1, 0, 10);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 5u);
    // With the queue full the flush starts; at least the first writes
    // must not wait behind the read's completion.
    EXPECT_TRUE(order[0] == writes[0] || order[0] == r);
    std::size_t w_pos = 0;
    for (std::size_t i = 0; i < order.size(); ++i)
        if (order[i] == writes[0])
            w_pos = i;
    EXPECT_LT(w_pos, 2u);
}

TEST(IntelRP, ReadPreemptsOngoingWrite)
{
    Harness h(ctrl::Mechanism::IntelRP);
    auto *w = h.add(AccessType::Write, 0, 0, 1, 0, 0);
    Tick now = 0;
    // Let the write start (activate issued, column still pending).
    h.tick(now++); // activate
    auto *r = h.add(AccessType::Read, 0, 0, 2, 0, now);
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], r) << "read should preempt the ongoing write";
    EXPECT_EQ(order[1], w);
    EXPECT_GE(h.sched().extraStats().at("preemptions"), 1.0);
}

TEST(Intel, NoPreemptionWithoutRpFlag)
{
    Harness h(ctrl::Mechanism::Intel);
    auto *w = h.add(AccessType::Write, 0, 0, 1, 0, 0);
    Tick now = 0;
    h.tick(now++); // write activate: write is ongoing
    auto *r = h.add(AccessType::Read, 0, 0, 2, 0, now);
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], w);
    EXPECT_EQ(order[1], r);
}

TEST(Intel, SingleWriteQueueSharedAcrossBanks)
{
    Harness h(ctrl::Mechanism::Intel);
    h.add(AccessType::Write, 0, 0, 1, 0, 0);
    h.add(AccessType::Write, 0, 1, 1, 0, 1);
    h.add(AccessType::Write, 1, 0, 1, 0, 2);
    EXPECT_EQ(h.sched().writeCount(), 3u);
    Tick now = 0;
    const auto order = h.drain(now);
    EXPECT_EQ(order.size(), 3u);
}
