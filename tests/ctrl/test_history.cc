/**
 * @file
 * Adaptive history-based scheduler tests (Hur & Lin, Section 2.2
 * related work / extended mechanism).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sched_test_util.hh"
#include "sim/experiment.hh"

using namespace bsim;
using schedtest::Harness;

TEST(History, DrainsMixedTraffic)
{
    Harness h(ctrl::Mechanism::AdaptiveHistory);
    bsim::Rng rng(3);
    for (int i = 0; i < 150; ++i)
        h.add(rng.chance(0.4) ? AccessType::Write : AccessType::Read,
              std::uint32_t(rng.below(2)), std::uint32_t(rng.below(2)),
              std::uint32_t(rng.below(8)), std::uint32_t(rng.below(32)),
              Tick(i));
    Tick now = 0;
    const auto order = h.drain(now);
    EXPECT_EQ(order.size(), 150u);
}

TEST(History, MatchesMixInsteadOfStarvingWrites)
{
    // With a balanced arrival mix, writes are interleaved with reads
    // rather than postponed to the very end (the defining difference
    // from Intel/Burst-style read priority). Reads here conflict in one
    // bank, so the data bus has slack for mix steering to act on.
    Harness h(ctrl::Mechanism::AdaptiveHistory);
    for (std::uint32_t i = 0; i < 6; ++i)
        h.add(AccessType::Read, 0, 0, 1 + i, 0, Tick(2 * i));
    for (std::uint32_t i = 0; i < 6; ++i)
        h.add(AccessType::Write, 0, 1, 1, i, Tick(2 * i + 1));
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 12u);
    std::size_t first_write = order.size();
    for (std::size_t i = 0; i < order.size(); ++i)
        if (order[i]->isWrite()) {
            first_write = i;
            break;
        }
    EXPECT_LT(first_write, 6u) << "writes must interleave, not wait";
}

TEST(History, RowHitPreferredWithinWindow)
{
    Harness h(ctrl::Mechanism::AdaptiveHistory);
    auto *opener = h.add(AccessType::Read, 0, 0, 1, 0, 0);
    auto *conflict = h.add(AccessType::Read, 0, 0, 2, 0, 1);
    auto *hit = h.add(AccessType::Read, 0, 0, 1, 1, 2);
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], opener);
    EXPECT_EQ(order[1], hit);
    EXPECT_EQ(order[2], conflict);
}

TEST(History, SpreadsAcrossBanks)
{
    Harness h(ctrl::Mechanism::AdaptiveHistory);
    // Equal-age accesses in two banks: service should alternate rather
    // than drain one bank.
    std::vector<ctrl::MemAccess *> b0, b1;
    for (std::uint32_t i = 0; i < 3; ++i) {
        b0.push_back(h.add(AccessType::Read, 0, 0, 1, i, Tick(i)));
        b1.push_back(h.add(AccessType::Read, 0, 1, 1, i, Tick(i)));
    }
    Tick now = 0;
    const auto order = h.drain(now);
    ASSERT_EQ(order.size(), 6u);
    // The first two services hit different banks.
    EXPECT_NE(order[0]->coords.bank, order[1]->coords.bank);
}

TEST(History, ReportsMixSteeringStat)
{
    Harness h(ctrl::Mechanism::AdaptiveHistory);
    for (std::uint32_t i = 0; i < 6; ++i) {
        h.add(AccessType::Read, 0, 0, 1, i, Tick(i));
        h.add(AccessType::Write, 0, 1, 1, i, Tick(i));
    }
    Tick now = 0;
    h.drain(now);
    EXPECT_GE(h.sched().extraStats().at("mix_steered"), 1.0);
}

TEST(History, WorksEndToEnd)
{
    sim::ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = ctrl::Mechanism::AdaptiveHistory;
    cfg.instructions = 20000;
    const auto r = sim::runExperiment(cfg);
    EXPECT_GT(r.execCpuCycles, 0u);
    EXPECT_GT(r.ctrl.writes, 0u);
    EXPECT_TRUE(r.sched.count("mix_steered"));
}

TEST(History, NameRoundTrips)
{
    EXPECT_EQ(ctrl::parseMechanism("AdaptiveHistory"),
              ctrl::Mechanism::AdaptiveHistory);
    EXPECT_STREQ(ctrl::mechanismName(ctrl::Mechanism::AdaptiveHistory),
                 "AdaptiveHistory");
}
