file(REMOVE_RECURSE
  "CMakeFiles/test_presets_param.dir/dram/test_presets_param.cc.o"
  "CMakeFiles/test_presets_param.dir/dram/test_presets_param.cc.o.d"
  "test_presets_param"
  "test_presets_param.pdb"
  "test_presets_param[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_presets_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
