# Empty compiler generated dependencies file for test_presets_param.
# This may be replaced when dependencies are built.
