file(REMOVE_RECURSE
  "CMakeFiles/test_trace_gen.dir/trace/test_trace_gen.cc.o"
  "CMakeFiles/test_trace_gen.dir/trace/test_trace_gen.cc.o.d"
  "test_trace_gen"
  "test_trace_gen.pdb"
  "test_trace_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
