# Empty compiler generated dependencies file for test_row_hit.
# This may be replaced when dependencies are built.
