file(REMOVE_RECURSE
  "CMakeFiles/test_row_hit.dir/ctrl/test_row_hit.cc.o"
  "CMakeFiles/test_row_hit.dir/ctrl/test_row_hit.cc.o.d"
  "test_row_hit"
  "test_row_hit.pdb"
  "test_row_hit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_row_hit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
