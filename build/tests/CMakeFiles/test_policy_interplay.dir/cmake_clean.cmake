file(REMOVE_RECURSE
  "CMakeFiles/test_policy_interplay.dir/ctrl/test_policy_interplay.cc.o"
  "CMakeFiles/test_policy_interplay.dir/ctrl/test_policy_interplay.cc.o.d"
  "test_policy_interplay"
  "test_policy_interplay.pdb"
  "test_policy_interplay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_interplay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
