# Empty compiler generated dependencies file for test_policy_interplay.
# This may be replaced when dependencies are built.
