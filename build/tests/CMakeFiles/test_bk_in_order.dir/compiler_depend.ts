# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for test_bk_in_order.
