file(REMOVE_RECURSE
  "CMakeFiles/test_bk_in_order.dir/ctrl/test_bk_in_order.cc.o"
  "CMakeFiles/test_bk_in_order.dir/ctrl/test_bk_in_order.cc.o.d"
  "test_bk_in_order"
  "test_bk_in_order.pdb"
  "test_bk_in_order[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bk_in_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
