# Empty compiler generated dependencies file for test_bk_in_order.
# This may be replaced when dependencies are built.
