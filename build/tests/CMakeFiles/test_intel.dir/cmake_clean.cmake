file(REMOVE_RECURSE
  "CMakeFiles/test_intel.dir/ctrl/test_intel.cc.o"
  "CMakeFiles/test_intel.dir/ctrl/test_intel.cc.o.d"
  "test_intel"
  "test_intel.pdb"
  "test_intel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
