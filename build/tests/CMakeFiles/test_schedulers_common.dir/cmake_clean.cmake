file(REMOVE_RECURSE
  "CMakeFiles/test_schedulers_common.dir/ctrl/test_schedulers_common.cc.o"
  "CMakeFiles/test_schedulers_common.dir/ctrl/test_schedulers_common.cc.o.d"
  "test_schedulers_common"
  "test_schedulers_common.pdb"
  "test_schedulers_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedulers_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
