# Empty dependencies file for test_schedulers_common.
# This may be replaced when dependencies are built.
