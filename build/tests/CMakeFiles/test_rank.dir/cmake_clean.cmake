file(REMOVE_RECURSE
  "CMakeFiles/test_rank.dir/dram/test_rank.cc.o"
  "CMakeFiles/test_rank.dir/dram/test_rank.cc.o.d"
  "test_rank"
  "test_rank.pdb"
  "test_rank[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
