file(REMOVE_RECURSE
  "CMakeFiles/test_command_log.dir/dram/test_command_log.cc.o"
  "CMakeFiles/test_command_log.dir/dram/test_command_log.cc.o.d"
  "test_command_log"
  "test_command_log.pdb"
  "test_command_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_command_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
