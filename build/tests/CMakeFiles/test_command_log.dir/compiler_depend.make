# Empty compiler generated dependencies file for test_command_log.
# This may be replaced when dependencies are built.
