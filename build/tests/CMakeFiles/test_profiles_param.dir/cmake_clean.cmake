file(REMOVE_RECURSE
  "CMakeFiles/test_profiles_param.dir/trace/test_profiles_param.cc.o"
  "CMakeFiles/test_profiles_param.dir/trace/test_profiles_param.cc.o.d"
  "test_profiles_param"
  "test_profiles_param.pdb"
  "test_profiles_param[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profiles_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
