# Empty dependencies file for test_profiles_param.
# This may be replaced when dependencies are built.
