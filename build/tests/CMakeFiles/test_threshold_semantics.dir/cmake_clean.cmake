file(REMOVE_RECURSE
  "CMakeFiles/test_threshold_semantics.dir/ctrl/test_threshold_semantics.cc.o"
  "CMakeFiles/test_threshold_semantics.dir/ctrl/test_threshold_semantics.cc.o.d"
  "test_threshold_semantics"
  "test_threshold_semantics.pdb"
  "test_threshold_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threshold_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
