# Empty dependencies file for test_threshold_semantics.
# This may be replaced when dependencies are built.
