# Empty dependencies file for burstsim.
# This may be replaced when dependencies are built.
