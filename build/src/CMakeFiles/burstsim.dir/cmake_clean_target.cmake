file(REMOVE_RECURSE
  "libburstsim.a"
)
