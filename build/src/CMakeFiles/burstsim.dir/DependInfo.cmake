
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/args.cc" "src/CMakeFiles/burstsim.dir/common/args.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/common/args.cc.o.d"
  "/root/repo/src/common/json.cc" "src/CMakeFiles/burstsim.dir/common/json.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/common/json.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/burstsim.dir/common/log.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/burstsim.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/burstsim.dir/common/table.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/common/table.cc.o.d"
  "/root/repo/src/cpu/cache.cc" "src/CMakeFiles/burstsim.dir/cpu/cache.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/cpu/cache.cc.o.d"
  "/root/repo/src/cpu/cache_hierarchy.cc" "src/CMakeFiles/burstsim.dir/cpu/cache_hierarchy.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/cpu/cache_hierarchy.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/burstsim.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/cpu/core.cc.o.d"
  "/root/repo/src/ctrl/access.cc" "src/CMakeFiles/burstsim.dir/ctrl/access.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/ctrl/access.cc.o.d"
  "/root/repo/src/ctrl/controller.cc" "src/CMakeFiles/burstsim.dir/ctrl/controller.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/ctrl/controller.cc.o.d"
  "/root/repo/src/ctrl/scheduler.cc" "src/CMakeFiles/burstsim.dir/ctrl/scheduler.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/ctrl/scheduler.cc.o.d"
  "/root/repo/src/ctrl/schedulers/bk_in_order.cc" "src/CMakeFiles/burstsim.dir/ctrl/schedulers/bk_in_order.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/ctrl/schedulers/bk_in_order.cc.o.d"
  "/root/repo/src/ctrl/schedulers/burst.cc" "src/CMakeFiles/burstsim.dir/ctrl/schedulers/burst.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/ctrl/schedulers/burst.cc.o.d"
  "/root/repo/src/ctrl/schedulers/factory.cc" "src/CMakeFiles/burstsim.dir/ctrl/schedulers/factory.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/ctrl/schedulers/factory.cc.o.d"
  "/root/repo/src/ctrl/schedulers/history.cc" "src/CMakeFiles/burstsim.dir/ctrl/schedulers/history.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/ctrl/schedulers/history.cc.o.d"
  "/root/repo/src/ctrl/schedulers/intel.cc" "src/CMakeFiles/burstsim.dir/ctrl/schedulers/intel.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/ctrl/schedulers/intel.cc.o.d"
  "/root/repo/src/ctrl/schedulers/row_hit.cc" "src/CMakeFiles/burstsim.dir/ctrl/schedulers/row_hit.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/ctrl/schedulers/row_hit.cc.o.d"
  "/root/repo/src/dram/address_map.cc" "src/CMakeFiles/burstsim.dir/dram/address_map.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/dram/address_map.cc.o.d"
  "/root/repo/src/dram/backing_store.cc" "src/CMakeFiles/burstsim.dir/dram/backing_store.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/dram/backing_store.cc.o.d"
  "/root/repo/src/dram/bank.cc" "src/CMakeFiles/burstsim.dir/dram/bank.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/dram/bank.cc.o.d"
  "/root/repo/src/dram/channel.cc" "src/CMakeFiles/burstsim.dir/dram/channel.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/dram/channel.cc.o.d"
  "/root/repo/src/dram/command_log.cc" "src/CMakeFiles/burstsim.dir/dram/command_log.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/dram/command_log.cc.o.d"
  "/root/repo/src/dram/memory_system.cc" "src/CMakeFiles/burstsim.dir/dram/memory_system.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/dram/memory_system.cc.o.d"
  "/root/repo/src/dram/power.cc" "src/CMakeFiles/burstsim.dir/dram/power.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/dram/power.cc.o.d"
  "/root/repo/src/dram/rank.cc" "src/CMakeFiles/burstsim.dir/dram/rank.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/dram/rank.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/CMakeFiles/burstsim.dir/dram/timing.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/dram/timing.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/burstsim.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/CMakeFiles/burstsim.dir/sim/report.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/sim/report.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/burstsim.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/sim/system.cc.o.d"
  "/root/repo/src/trace/spec_profiles.cc" "src/CMakeFiles/burstsim.dir/trace/spec_profiles.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/trace/spec_profiles.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/CMakeFiles/burstsim.dir/trace/trace_file.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/trace/trace_file.cc.o.d"
  "/root/repo/src/trace/trace_gen.cc" "src/CMakeFiles/burstsim.dir/trace/trace_gen.cc.o" "gcc" "src/CMakeFiles/burstsim.dir/trace/trace_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
