# Empty dependencies file for bench_fig12_threshold_sweep.
# This may be replaced when dependencies are built.
