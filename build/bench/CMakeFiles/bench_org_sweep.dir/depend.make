# Empty dependencies file for bench_org_sweep.
# This may be replaced when dependencies are built.
