file(REMOVE_RECURSE
  "CMakeFiles/bench_org_sweep.dir/bench_org_sweep.cc.o"
  "CMakeFiles/bench_org_sweep.dir/bench_org_sweep.cc.o.d"
  "bench_org_sweep"
  "bench_org_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_org_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
