# Empty compiler generated dependencies file for bench_sec6_tech_trend.
# This may be replaced when dependencies are built.
