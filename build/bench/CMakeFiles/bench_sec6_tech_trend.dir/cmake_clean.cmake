file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_tech_trend.dir/bench_sec6_tech_trend.cc.o"
  "CMakeFiles/bench_sec6_tech_trend.dir/bench_sec6_tech_trend.cc.o.d"
  "bench_sec6_tech_trend"
  "bench_sec6_tech_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_tech_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
