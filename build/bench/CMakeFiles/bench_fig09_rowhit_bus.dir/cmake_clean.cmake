file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_rowhit_bus.dir/bench_fig09_rowhit_bus.cc.o"
  "CMakeFiles/bench_fig09_rowhit_bus.dir/bench_fig09_rowhit_bus.cc.o.d"
  "bench_fig09_rowhit_bus"
  "bench_fig09_rowhit_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_rowhit_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
