# Empty compiler generated dependencies file for bench_fig09_rowhit_bus.
# This may be replaced when dependencies are built.
