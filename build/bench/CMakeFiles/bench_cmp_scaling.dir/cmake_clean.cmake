file(REMOVE_RECURSE
  "CMakeFiles/bench_cmp_scaling.dir/bench_cmp_scaling.cc.o"
  "CMakeFiles/bench_cmp_scaling.dir/bench_cmp_scaling.cc.o.d"
  "bench_cmp_scaling"
  "bench_cmp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cmp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
