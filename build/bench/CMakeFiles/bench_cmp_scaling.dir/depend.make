# Empty dependencies file for bench_cmp_scaling.
# This may be replaced when dependencies are built.
