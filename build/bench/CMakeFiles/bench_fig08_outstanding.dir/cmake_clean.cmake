file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_outstanding.dir/bench_fig08_outstanding.cc.o"
  "CMakeFiles/bench_fig08_outstanding.dir/bench_fig08_outstanding.cc.o.d"
  "bench_fig08_outstanding"
  "bench_fig08_outstanding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_outstanding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
