# Empty dependencies file for bench_fig08_outstanding.
# This may be replaced when dependencies are built.
