# Empty dependencies file for bench_fig11_threshold_dist.
# This may be replaced when dependencies are built.
