file(REMOVE_RECURSE
  "CMakeFiles/burstsim_cli.dir/burstsim_cli.cc.o"
  "CMakeFiles/burstsim_cli.dir/burstsim_cli.cc.o.d"
  "burstsim"
  "burstsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
