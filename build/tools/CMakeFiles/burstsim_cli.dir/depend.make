# Empty dependencies file for burstsim_cli.
# This may be replaced when dependencies are built.
