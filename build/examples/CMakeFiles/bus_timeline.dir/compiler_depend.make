# Empty compiler generated dependencies file for bus_timeline.
# This may be replaced when dependencies are built.
