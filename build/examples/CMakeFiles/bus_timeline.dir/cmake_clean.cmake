file(REMOVE_RECURSE
  "CMakeFiles/bus_timeline.dir/bus_timeline.cpp.o"
  "CMakeFiles/bus_timeline.dir/bus_timeline.cpp.o.d"
  "bus_timeline"
  "bus_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
