# Empty compiler generated dependencies file for cmp_workloads.
# This may be replaced when dependencies are built.
