file(REMOVE_RECURSE
  "CMakeFiles/cmp_workloads.dir/cmp_workloads.cpp.o"
  "CMakeFiles/cmp_workloads.dir/cmp_workloads.cpp.o.d"
  "cmp_workloads"
  "cmp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
